#include "sim/event_queue.h"

#include <cassert>

namespace flower {

void EventQueue::SiftUp(size_t index) const {
  const Item item = heap_[index];
  while (index > 0) {
    const size_t parent = (index - 1) / 4;
    if (!Earlier(item, heap_[parent])) break;
    heap_[index] = heap_[parent];
    index = parent;
  }
  heap_[index] = item;
}

void EventQueue::SiftDown(size_t index) const {
  const size_t size = heap_.size();
  const Item item = heap_[index];
  for (;;) {
    const size_t first_child = index * 4 + 1;
    if (first_child >= size) break;
    const size_t last_child =
        first_child + 4 <= size ? first_child + 4 : size;
    size_t best = first_child;
    for (size_t c = first_child + 1; c < last_child; ++c) {
      if (Earlier(heap_[c], heap_[best])) best = c;
    }
    if (!Earlier(heap_[best], item)) break;
    heap_[index] = heap_[best];
    index = best;
  }
  heap_[index] = item;
}

void EventQueue::PopRoot() const {
  heap_[0] = heap_.back();
  heap_.pop_back();
  if (!heap_.empty()) SiftDown(0);
}

EventHandle EventQueue::Push(SimTime t, EventFn fn) {
  assert(t >= 0);
  const uint32_t index = AllocSlot();
  const uint64_t seq = next_seq_++;
  Slot& slot = SlotAt(index);
  slot.fn = std::move(fn);
  slot.seq = seq;
  heap_.push_back(Item::Make(t, seq, index));
  SiftUp(heap_.size() - 1);
  ++live_;
  return MakeHandle(index, seq);
}

bool EventQueue::empty() const {
  SkimCancelled();
  return heap_.empty();
}

SimTime EventQueue::NextTime() const {
  SkimCancelled();
  assert(!heap_.empty());
  return heap_[0].Time();
}

EventFn EventQueue::Pop(SimTime* t) {
  SkimCancelled();
  assert(!heap_.empty());
  const Item item = heap_[0];
  PopRoot();
  EventFn fn = std::move(SlotAt(item.slot).fn);
  FreeSlot(item.slot);  // invalidates the seq: handles go stale (fired)
  --live_;
  *t = item.Time();
  return fn;
}

}  // namespace flower
