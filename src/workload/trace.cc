#include "workload/trace.h"

#include <cinttypes>
#include <cstdio>

namespace flower {

Trace Trace::Record(WorkloadGenerator* generator) {
  return Trace(generator->GenerateAll());
}

Status Trace::Save(const std::string& path) const {
  std::FILE* f = std::fopen(path.c_str(), "w");
  if (f == nullptr) {
    return Status::Unavailable("cannot open " + path + " for writing");
  }
  std::fprintf(f, "flower-trace v2 %zu\n", events_.size());
  for (const QueryEvent& e : events_) {
    std::fprintf(f, "%" PRId64 " %u %zu %" PRIu64 " %u %u %" PRIu64 "\n",
                 e.time, e.website, e.object_rank, e.object, e.node,
                 e.locality, e.size_bits);
  }
  std::fclose(f);
  return Status::Ok();
}

Result<Trace> Trace::Load(const std::string& path) {
  std::FILE* f = std::fopen(path.c_str(), "r");
  if (f == nullptr) {
    return Status::NotFound("cannot open " + path);
  }
  int version = 0;
  size_t count = 0;
  if (std::fscanf(f, "flower-trace v%d %zu\n", &version, &count) != 2 ||
      (version != 1 && version != 2)) {
    std::fclose(f);
    return Status::InvalidArgument("bad trace header in " + path);
  }
  std::vector<QueryEvent> events;
  events.reserve(count);
  for (size_t i = 0; i < count; ++i) {
    QueryEvent e;
    if (std::fscanf(f, "%" SCNd64 " %u %zu %" SCNu64 " %u %u", &e.time,
                    &e.website, &e.object_rank, &e.object, &e.node,
                    &e.locality) != 6) {
      std::fclose(f);
      return Status::InvalidArgument("truncated trace at event " +
                                     std::to_string(i));
    }
    if (version >= 2 &&
        std::fscanf(f, "%" SCNu64, &e.size_bits) != 1) {
      // v1 events carry no size; a v2 row without one is malformed.
      std::fclose(f);
      return Status::InvalidArgument("missing size_bits at event " +
                                     std::to_string(i));
    }
    events.push_back(e);
  }
  std::fclose(f);
  return Trace(std::move(events));
}

}  // namespace flower
