// DEPRECATED v1 experiment entry point, kept as a thin shim for one PR.
//
// The driver layer moved to the Experiment builder (src/api/experiment.h):
//
//   RunResult r = Experiment(config).WithSystem("flower").Run();
//
// which adds pluggable systems (SystemRegistry), workloads (synthetic or
// trace replay) and result sinks (text/JSON/CSV). RunExperiment survives
// below only so out-of-tree callers get a deprecation warning instead of
// a build break; it will be removed in the next PR.
#ifndef FLOWERCDN_WORKLOAD_RUNNER_H_
#define FLOWERCDN_WORKLOAD_RUNNER_H_

#include "api/experiment.h"
#include "api/run_result.h"
#include "common/config.h"

namespace flower {

enum class SystemKind {
  kFlower,
  kSquirrelDirectory,
  kSquirrelHomeStore,
};

inline const char* SystemKindName(SystemKind k) {
  switch (k) {
    case SystemKind::kFlower: return "Flower-CDN";
    case SystemKind::kSquirrelDirectory: return "Squirrel";
    case SystemKind::kSquirrelHomeStore: return "Squirrel(home-store)";
  }
  return "?";
}

/// Maps the v1 enum onto the v2 registry key.
inline const char* SystemKindKey(SystemKind k) {
  switch (k) {
    case SystemKind::kFlower: return "flower";
    case SystemKind::kSquirrelDirectory: return "squirrel";
    case SystemKind::kSquirrelHomeStore: return "squirrel-home";
  }
  return "?";
}

/// Runs one full simulation of the given system under `config`.
[[deprecated("use Experiment(config).WithSystem(key).Run()")]]
RunResult RunExperiment(const SimConfig& config, SystemKind system);

}  // namespace flower

#endif  // FLOWERCDN_WORKLOAD_RUNNER_H_
