// End-to-end experiment runner: wires simulator, topology, network,
// metrics, one of the two systems, the workload and optional churn into a
// single run, and collects the paper's metrics. All benchmark drivers and
// several integration tests sit on top of this.
#ifndef FLOWERCDN_WORKLOAD_RUNNER_H_
#define FLOWERCDN_WORKLOAD_RUNNER_H_

#include <string>
#include <vector>

#include "common/config.h"
#include "common/histogram.h"
#include "squirrel/squirrel_node.h"

namespace flower {

enum class SystemKind {
  kFlower,
  kSquirrelDirectory,
  kSquirrelHomeStore,
};

inline const char* SystemKindName(SystemKind k) {
  switch (k) {
    case SystemKind::kFlower: return "Flower-CDN";
    case SystemKind::kSquirrelDirectory: return "Squirrel";
    case SystemKind::kSquirrelHomeStore: return "Squirrel(home-store)";
  }
  return "?";
}

struct RunResult {
  SystemKind system = SystemKind::kFlower;

  uint64_t queries_submitted = 0;
  uint64_t queries_served = 0;
  uint64_t server_hits = 0;
  size_t participants = 0;

  double final_hit_ratio = 0;       // last metric windows (headline number)
  double cumulative_hit_ratio = 0;  // over the whole run
  double mean_lookup_ms = 0;
  double mean_transfer_ms = 0;
  double background_bps = 0;  // per content/directory peer, whole run

  // Per-window series (window = config.metrics_window).
  std::vector<double> hit_ratio_by_window;
  std::vector<double> lookup_ms_by_window;
  std::vector<double> transfer_ms_by_window;
  std::vector<double> background_bps_by_window;

  // Distributions.
  Histogram lookup_hist{25.0, 240};
  Histogram transfer_hist{25.0, 60};

  // Serve-path split (diagnostics: who provided the objects).
  uint64_t served_by_server = 0;
  uint64_t served_by_local_peer = 0;
  uint64_t served_by_remote_peer = 0;

  // Cache-pressure statistics (zero with the default unbounded policy).
  uint64_t cache_evictions = 0;
  uint64_t stale_redirects = 0;

  // Churn statistics (zero without churn).
  uint64_t churn_failures = 0;
  uint64_t churn_leaves = 0;
  uint64_t directory_promotions = 0;

  /// Fraction of lookups resolved faster than `ms`.
  double LookupFractionBelow(double ms) const {
    return lookup_hist.FractionBelow(ms);
  }
  double TransferFractionBelow(double ms) const {
    return transfer_hist.FractionBelow(ms);
  }
};

/// Runs one full simulation of the given system under `config`.
RunResult RunExperiment(const SimConfig& config, SystemKind system);

/// Formats one summary line, used by the benchmark drivers.
std::string FormatRunSummary(const RunResult& result);

}  // namespace flower

#endif  // FLOWERCDN_WORKLOAD_RUNNER_H_
