#include "workload/runner.h"

#include <memory>
#include <sstream>

#include "core/churn.h"
#include "core/flower_system.h"
#include "net/network.h"
#include "net/topology.h"
#include "sim/simulator.h"
#include "squirrel/squirrel_system.h"
#include "stats/metrics.h"
#include "workload/workload.h"

namespace flower {

namespace {

/// Schedules workload events one at a time (keeps the event heap small),
/// skipping originators that are blacked out by churn.
template <typename SubmitFn>
class WorkloadDriver {
 public:
  WorkloadDriver(Simulator* sim, WorkloadGenerator* gen, SubmitFn submit,
                 const ChurnManager* churn)
      : sim_(sim), gen_(gen), submit_(std::move(submit)), churn_(churn) {
    ScheduleNext();
  }

 private:
  void ScheduleNext() {
    QueryEvent ev;
    if (!gen_->Next(&ev)) return;
    sim_->ScheduleAt(ev.time, [this, ev]() {
      if (churn_ == nullptr || !churn_->IsBlackedOut(ev.node)) {
        submit_(ev);
      }
      ScheduleNext();
    });
  }

  Simulator* sim_;
  WorkloadGenerator* gen_;
  SubmitFn submit_;
  const ChurnManager* churn_;
};

/// Samples per-window background traffic for Figure 5.
class BackgroundSampler {
 public:
  BackgroundSampler(Simulator* sim, const Network* network, SimTime window,
                    std::function<std::vector<PeerAddress>()> participants)
      : network_(network), participants_(std::move(participants)) {
    timer_ = sim->SchedulePeriodic(window, window, [this, window]() {
      std::vector<PeerAddress> peers = participants_();
      uint64_t bits = network_->SumBits(
          peers, {TrafficClass::kGossip, TrafficClass::kPush,
                  TrafficClass::kKeepalive});
      double window_s = static_cast<double>(window) / kSecond;
      double bps = 0;
      if (!peers.empty()) {
        uint64_t delta = bits >= prev_bits_ ? bits - prev_bits_ : 0;
        bps = static_cast<double>(delta) / window_s /
              static_cast<double>(peers.size());
      }
      prev_bits_ = bits;
      samples_.push_back(bps);
    });
  }
  ~BackgroundSampler() { timer_.Cancel(); }

  const std::vector<double>& samples() const { return samples_; }

 private:
  const Network* network_;
  std::function<std::vector<PeerAddress>()> participants_;
  uint64_t prev_bits_ = 0;
  std::vector<double> samples_;
  Simulator::PeriodicHandle timer_;
};

void CollectSeries(const Metrics& metrics, const SimConfig& config,
                   RunResult* result) {
  const RatioSeries& hits = metrics.hit_series();
  for (size_t i = 0; i < hits.NumWindows(); ++i) {
    result->hit_ratio_by_window.push_back(hits.WindowRatio(i));
  }
  const TimeSeries& lookups = metrics.lookup_series();
  for (size_t i = 0; i < lookups.NumWindows(); ++i) {
    result->lookup_ms_by_window.push_back(lookups.WindowMean(i));
  }
  const TimeSeries& transfers = metrics.transfer_series();
  for (size_t i = 0; i < transfers.NumWindows(); ++i) {
    result->transfer_ms_by_window.push_back(transfers.WindowMean(i));
  }
  result->served_by_server =
      metrics.ServesBy(Metrics::ProviderKind::kServer);
  result->served_by_local_peer =
      metrics.ServesBy(Metrics::ProviderKind::kLocalPeer);
  result->served_by_remote_peer =
      metrics.ServesBy(Metrics::ProviderKind::kRemotePeer);
  result->queries_submitted = metrics.queries_submitted();
  result->queries_served = metrics.queries_served();
  result->server_hits = metrics.server_hits();
  result->cache_evictions = metrics.cache_evictions();
  result->stale_redirects = metrics.stale_redirects();
  result->final_hit_ratio = metrics.FinalHitRatio();
  result->cumulative_hit_ratio = metrics.CumulativeHitRatio();
  result->mean_lookup_ms = metrics.MeanLookupLatency();
  result->mean_transfer_ms = metrics.MeanTransferDistance();
  result->lookup_hist = metrics.lookup_histogram();
  result->transfer_hist = metrics.transfer_histogram();
  (void)config;
}

RunResult RunFlower(const SimConfig& config) {
  Simulator sim(config.seed);
  Topology topology(config, sim.rng());
  Network network(&sim, &topology);
  Metrics metrics(config);
  FlowerSystem system(config, &sim, &network, &topology, &metrics);
  system.Setup();

  ChurnManager churn(&system, config, Mix64(config.seed ^ 0xC0FFEE));
  churn.Start();

  WorkloadGenerator gen(config, system.deployment(), system.catalog(),
                        Mix64(config.seed ^ 0x5EED));
  auto submit = [&system](const QueryEvent& ev) {
    system.SubmitQuery(ev.node, ev.website, ev.object);
  };
  WorkloadDriver<decltype(submit)> driver(&sim, &gen, submit,
                                          config.churn_enabled ? &churn
                                                               : nullptr);
  BackgroundSampler sampler(&sim, &network, config.metrics_window,
                            [&system]() {
                              return system.ParticipantAddresses();
                            });

  sim.RunUntil(config.duration);

  RunResult result;
  result.system = SystemKind::kFlower;
  CollectSeries(metrics, config, &result);
  result.background_bps_by_window = sampler.samples();
  std::vector<PeerAddress> peers = system.ParticipantAddresses();
  result.participants = peers.size();
  result.background_bps =
      Metrics::BackgroundBps(network, peers, config.duration);
  result.churn_failures = churn.failures();
  result.churn_leaves = churn.leaves();
  result.directory_promotions = system.promotions();
  return result;
}

RunResult RunSquirrel(const SimConfig& config, SquirrelStrategy strategy) {
  Simulator sim(config.seed);
  Topology topology(config, sim.rng());
  Network network(&sim, &topology);
  Metrics metrics(config);
  SquirrelSystem system(config, &sim, &network, &topology, &metrics,
                        strategy);
  system.Setup();

  WorkloadGenerator gen(config, system.deployment(), system.catalog(),
                        Mix64(config.seed ^ 0x5EED));
  auto submit = [&system](const QueryEvent& ev) {
    system.SubmitQuery(ev.node, ev.website, ev.object);
  };
  WorkloadDriver<decltype(submit)> driver(&sim, &gen, submit, nullptr);
  BackgroundSampler sampler(&sim, &network, config.metrics_window,
                            [&system]() {
                              return system.ParticipantAddresses();
                            });

  sim.RunUntil(config.duration);

  RunResult result;
  result.system = strategy == SquirrelStrategy::kDirectory
                      ? SystemKind::kSquirrelDirectory
                      : SystemKind::kSquirrelHomeStore;
  CollectSeries(metrics, config, &result);
  result.background_bps_by_window = sampler.samples();
  std::vector<PeerAddress> peers = system.ParticipantAddresses();
  result.participants = peers.size();
  result.background_bps =
      Metrics::BackgroundBps(network, peers, config.duration);
  return result;
}

}  // namespace

RunResult RunExperiment(const SimConfig& config, SystemKind system) {
  switch (system) {
    case SystemKind::kFlower:
      return RunFlower(config);
    case SystemKind::kSquirrelDirectory:
      return RunSquirrel(config, SquirrelStrategy::kDirectory);
    case SystemKind::kSquirrelHomeStore:
      return RunSquirrel(config, SquirrelStrategy::kHomeStore);
  }
  return RunResult{};
}

std::string FormatRunSummary(const RunResult& r) {
  std::ostringstream os;
  os << SystemKindName(r.system) << ": hit_ratio=" << r.final_hit_ratio
     << " (cum " << r.cumulative_hit_ratio << ")"
     << " lookup=" << r.mean_lookup_ms << "ms"
     << " transfer=" << r.mean_transfer_ms << "ms"
     << " background=" << r.background_bps << "bps"
     << " peers=" << r.participants << " queries=" << r.queries_submitted
     << " server_hits=" << r.server_hits;
  if (r.cache_evictions > 0 || r.stale_redirects > 0) {
    os << " evictions=" << r.cache_evictions
       << " stale_redirects=" << r.stale_redirects;
  }
  return os.str();
}

}  // namespace flower
