#include "workload/runner.h"

namespace flower {

RunResult RunExperiment(const SimConfig& config, SystemKind system) {
  return Experiment(config).WithSystem(SystemKindKey(system)).Run();
}

}  // namespace flower
