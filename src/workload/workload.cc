#include "workload/workload.h"

#include <cassert>

namespace flower {

WorkloadGenerator::WorkloadGenerator(const SimConfig& config,
                                     const Deployment& deployment,
                                     const WebsiteCatalog& catalog,
                                     uint64_t seed)
    : config_(&config),
      deployment_(&deployment),
      catalog_(&catalog),
      rng_(seed),
      zipf_(static_cast<size_t>(config.num_objects_per_website),
            config.zipf_alpha),
      mean_gap_ms_(1000.0 / config.queries_per_second) {
  locality_weights_ = config.locality_weights;
  if (static_cast<int>(locality_weights_.size()) != config.num_localities) {
    locality_weights_.assign(static_cast<size_t>(config.num_localities), 1.0);
  }
  assert(config.num_active_websites > 0);
}

bool WorkloadGenerator::Next(QueryEvent* out) {
  next_time_ += static_cast<SimTime>(rng_.Exponential(mean_gap_ms_)) + 1;
  if (next_time_ >= config_->duration) return false;

  out->time = next_time_;
  int num_active =
      static_cast<int>(deployment_->client_pools.size());
  out->website = static_cast<WebsiteId>(
      rng_.Index(static_cast<size_t>(num_active)));

  // Draw a locality with a non-empty pool for this website.
  const auto& pools = deployment_->client_pools[out->website];
  size_t loc = 0;
  for (int attempt = 0; attempt < 32; ++attempt) {
    loc = rng_.WeightedIndex(locality_weights_);
    if (!pools[loc].empty()) break;
  }
  if (pools[loc].empty()) {
    for (size_t l = 0; l < pools.size(); ++l) {
      if (!pools[l].empty()) {
        loc = l;
        break;
      }
    }
  }
  assert(!pools[loc].empty() && "workload requires a non-empty client pool");
  out->locality = static_cast<LocalityId>(loc);
  out->node = pools[loc][rng_.Index(pools[loc].size())];

  out->object_rank = zipf_.Sample(&rng_);
  const Website& site = catalog_->site(out->website);
  out->object = site.objects[out->object_rank];
  out->size_bits = site.SizeBitsOfRank(out->object_rank);
  ++events_generated_;
  return true;
}

std::vector<QueryEvent> WorkloadGenerator::GenerateAll() {
  std::vector<QueryEvent> trace;
  QueryEvent ev;
  while (Next(&ev)) trace.push_back(ev);
  return trace;
}

}  // namespace flower
