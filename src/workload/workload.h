// Synthetic query workload (paper Sec 6.1).
//
// Queries arrive as a Poisson process at `queries_per_second`. For each
// query: (1) an active website is drawn uniformly; (2) a locality is drawn
// by population weight; (3) the originator is drawn uniformly from the
// (website, locality) client pool — its first query makes it a "new
// client", later ones a content-peer query; (4) the object is drawn from
// the website's catalog by a Zipf law.
#ifndef FLOWERCDN_WORKLOAD_WORKLOAD_H_
#define FLOWERCDN_WORKLOAD_WORKLOAD_H_

#include <vector>

#include "common/config.h"
#include "common/rng.h"
#include "common/types.h"
#include "common/zipf.h"
#include "core/deployment.h"
#include "core/website.h"

namespace flower {

struct QueryEvent {
  SimTime time = 0;
  WebsiteId website = 0;
  size_t object_rank = 0;
  ObjectId object = 0;
  NodeId node = kInvalidNode;
  LocalityId locality = 0;
  /// Object size from the website catalog (bits). Zero when unknown
  /// (events loaded from a v1 trace, which predates sizes).
  uint64_t size_bits = 0;
};

class WorkloadGenerator {
 public:
  WorkloadGenerator(const SimConfig& config, const Deployment& deployment,
                    const WebsiteCatalog& catalog, uint64_t seed);

  /// Produces the next query event; returns false once the configured
  /// duration is exceeded.
  bool Next(QueryEvent* out);

  /// Materializes the full trace (for replay or inspection).
  std::vector<QueryEvent> GenerateAll();

  uint64_t events_generated() const { return events_generated_; }

 private:
  const SimConfig* config_;
  const Deployment* deployment_;
  const WebsiteCatalog* catalog_;
  Rng rng_;
  ZipfSampler zipf_;
  std::vector<double> locality_weights_;
  double mean_gap_ms_;
  SimTime next_time_ = 0;
  uint64_t events_generated_ = 0;
};

}  // namespace flower

#endif  // FLOWERCDN_WORKLOAD_WORKLOAD_H_
