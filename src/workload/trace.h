// Query-trace persistence: record a generated workload to a file and
// replay it later, so experiments can be re-run bit-identically across
// machines or against modified systems.
#ifndef FLOWERCDN_WORKLOAD_TRACE_H_
#define FLOWERCDN_WORKLOAD_TRACE_H_

#include <string>
#include <vector>

#include "common/status.h"
#include "workload/workload.h"

namespace flower {

class Trace {
 public:
  Trace() = default;
  explicit Trace(std::vector<QueryEvent> events)
      : events_(std::move(events)) {}

  const std::vector<QueryEvent>& events() const { return events_; }
  size_t size() const { return events_.size(); }
  bool empty() const { return events_.empty(); }

  /// Records the full output of a generator.
  static Trace Record(WorkloadGenerator* generator);

  /// Saves as a line-oriented text file (current format):
  ///   header line  "flower-trace v2 <count>"
  ///   event lines  "<time> <website> <rank> <object> <node> <locality>
  ///                 <size_bits>"
  Status Save(const std::string& path) const;

  /// Loads a file produced by Save. Validates the header and field
  /// counts. v1 files (no per-object sizes) still load; their events
  /// carry size_bits = 0.
  static Result<Trace> Load(const std::string& path);

 private:
  std::vector<QueryEvent> events_;
};

}  // namespace flower

#endif  // FLOWERCDN_WORKLOAD_TRACE_H_
