#include "bloom/summary.h"

#include <algorithm>
#include <cassert>

namespace flower {

ContentSummary::ContentSummary(int capacity, int bits_per_object,
                               int num_hashes)
    : filter_(static_cast<size_t>(std::max(capacity, 1)) *
                  static_cast<size_t>(bits_per_object),
              num_hashes) {}

void ContentSummary::Rebuild(const std::vector<ObjectId>& objects) {
  filter_.Clear();
  for (ObjectId id : objects) filter_.Add(id);
}

}  // namespace flower
