// Content summaries: Bloom filters over object identifiers, sized per the
// paper's Table 1 (8 bits per potential object).
#ifndef FLOWERCDN_BLOOM_SUMMARY_H_
#define FLOWERCDN_BLOOM_SUMMARY_H_

#include <cstdint>
#include <vector>

#include "bloom/bloom_filter.h"
#include "common/types.h"

namespace flower {

/// A snapshot summary of a set of object ids, as carried in gossip and
/// directory-summary messages. Knows its own wire size.
class ContentSummary {
 public:
  /// capacity: the maximum number of objects the summarized set may hold
  /// (the paper bounds it by nb_ob, the per-website object count).
  ContentSummary(int capacity, int bits_per_object, int num_hashes);

  /// Convenience: empty summary with default geometry for tests.
  ContentSummary() : ContentSummary(1, 8, 5) {}

  void Add(ObjectId id) { filter_.Add(id); }
  bool MaybeContains(ObjectId id) const { return filter_.MaybeContains(id); }
  void Clear() { filter_.Clear(); }

  /// Rebuilds from a full object list.
  void Rebuild(const std::vector<ObjectId>& objects);

  /// Wire size in bits (the filter bits; geometry is implied by protocol).
  uint64_t SizeBits() const { return filter_.num_bits(); }

  uint64_t num_insertions() const { return filter_.num_insertions(); }
  const BloomFilter& filter() const { return filter_; }

 private:
  BloomFilter filter_;
};

}  // namespace flower

#endif  // FLOWERCDN_BLOOM_SUMMARY_H_
