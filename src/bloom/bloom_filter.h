// Bloom filter used for content and directory summaries (Fan et al.,
// "Summary Cache", SIGCOMM 1998 — the paper's citation [9]).
#ifndef FLOWERCDN_BLOOM_BLOOM_FILTER_H_
#define FLOWERCDN_BLOOM_BLOOM_FILTER_H_

#include <cstddef>
#include <cstdint>
#include <vector>

namespace flower {

class BloomFilter {
 public:
  /// Creates a filter with `num_bits` bits and `num_hashes` hash functions.
  BloomFilter(size_t num_bits, int num_hashes);

  void Add(uint64_t key);

  /// True if the key *may* be present; false means definitely absent.
  bool MaybeContains(uint64_t key) const;

  void Clear();

  /// Bitwise union with another filter of identical geometry.
  void UnionWith(const BloomFilter& other);

  size_t num_bits() const { return num_bits_; }
  int num_hashes() const { return num_hashes_; }
  size_t CountSetBits() const;
  uint64_t num_insertions() const { return insertions_; }

  /// Theoretical false-positive rate for the current insertion count:
  /// (1 - e^{-kn/m})^k.
  double EstimatedFpRate() const;

  bool operator==(const BloomFilter& other) const {
    return num_bits_ == other.num_bits_ && num_hashes_ == other.num_hashes_ &&
           bits_ == other.bits_;
  }

 private:
  // Double hashing: position_i = h1 + i * h2 (mod m).
  void Positions(uint64_t key, std::vector<size_t>* out) const;

  size_t num_bits_;
  int num_hashes_;
  std::vector<uint64_t> bits_;
  uint64_t insertions_ = 0;
};

}  // namespace flower

#endif  // FLOWERCDN_BLOOM_BLOOM_FILTER_H_
