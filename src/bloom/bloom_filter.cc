#include "bloom/bloom_filter.h"

#include <cassert>
#include <cmath>

#include "common/rng.h"

namespace flower {

BloomFilter::BloomFilter(size_t num_bits, int num_hashes)
    : num_bits_(num_bits),
      num_hashes_(num_hashes),
      bits_((num_bits + 63) / 64, 0) {
  assert(num_bits > 0);
  assert(num_hashes > 0);
}

void BloomFilter::Positions(uint64_t key, std::vector<size_t>* out) const {
  out->clear();
  uint64_t h1 = Mix64(key);
  uint64_t h2 = Mix64(key ^ 0x5851f42d4c957f2dULL) | 1;  // odd step
  for (int i = 0; i < num_hashes_; ++i) {
    out->push_back(static_cast<size_t>((h1 + static_cast<uint64_t>(i) * h2) %
                                       num_bits_));
  }
}

void BloomFilter::Add(uint64_t key) {
  std::vector<size_t> pos;
  Positions(key, &pos);
  for (size_t p : pos) bits_[p / 64] |= (1ULL << (p % 64));
  ++insertions_;
}

bool BloomFilter::MaybeContains(uint64_t key) const {
  std::vector<size_t> pos;
  Positions(key, &pos);
  for (size_t p : pos) {
    if ((bits_[p / 64] & (1ULL << (p % 64))) == 0) return false;
  }
  return true;
}

void BloomFilter::Clear() {
  for (auto& w : bits_) w = 0;
  insertions_ = 0;
}

void BloomFilter::UnionWith(const BloomFilter& other) {
  assert(other.num_bits_ == num_bits_);
  assert(other.num_hashes_ == num_hashes_);
  for (size_t i = 0; i < bits_.size(); ++i) bits_[i] |= other.bits_[i];
  insertions_ += other.insertions_;
}

size_t BloomFilter::CountSetBits() const {
  size_t count = 0;
  for (uint64_t w : bits_) count += static_cast<size_t>(__builtin_popcountll(w));
  return count;
}

double BloomFilter::EstimatedFpRate() const {
  double k = static_cast<double>(num_hashes_);
  double n = static_cast<double>(insertions_);
  double m = static_cast<double>(num_bits_);
  return std::pow(1.0 - std::exp(-k * n / m), k);
}

}  // namespace flower
