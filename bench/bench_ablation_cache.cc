// Ablation: bounded peer storage (src/cache/). The paper's content peers
// keep every object they retrieve (Sec 4); real CDN edges run under
// storage pressure. This sweep bounds every peer's cache and compares
// replacement policies, producing hit-ratio-vs-capacity curves.
//
// Expected: hit ratio grows monotonically with capacity for every policy
// and converges to the unbounded (paper) behavior once the budget covers
// a peer's working set; evictions and the stale redirects they induce
// shrink accordingly. Size-aware GDSF matters once object sizes are
// heterogeneous (object_size_distribution=pareto).
#include <cstdio>
#include <string>
#include <vector>

#include "bench_common.h"

int main(int argc, char** argv) {
  using namespace flower;
  bench::Driver driver("ablation_cache", argc, argv);
  driver.PrintHeader("Ablation: cache capacity x replacement policy");
  const SimConfig& base = driver.config();

  const uint64_t object_bytes = base.object_size_bits / 8;
  // Capacities in objects' worth of bytes: severe pressure -> roomy.
  const std::vector<uint64_t> capacities = {
      4 * object_bytes, 16 * object_bytes, 64 * object_bytes,
      256 * object_bytes};
  const std::vector<std::string> policies = {"lru", "lfu", "gdsf"};

  // Queue every sweep point up front (the unbounded reference, the
  // policy x capacity grid, the GDSF cost-model pair), then run them all
  // at once — in parallel under jobs=N, with results back in this order.
  SimConfig unbounded = base;
  unbounded.cache_policy = "unbounded";
  unbounded.cache_capacity_bytes = 0;
  driver.Enqueue(unbounded, "flower", "unbounded");
  for (const std::string& policy : policies) {
    for (uint64_t capacity : capacities) {
      SimConfig c = base;
      c.cache_policy = policy;
      c.cache_capacity_bytes = capacity;
      driver.Enqueue(c, "flower", policy + "/" + std::to_string(capacity));
    }
  }
  for (const std::string& cost : {std::string("uniform"),
                                  std::string("distance")}) {
    SimConfig c = base;
    c.cache_policy = "gdsf";
    c.cache_capacity_bytes = 4 * object_bytes;
    c.cache_cost = cost;
    driver.Enqueue(c, "flower", "gdsf/" + cost);
  }
  std::vector<RunResult> runs = driver.RunQueued();
  size_t next = 0;

  std::printf("  %-10s %-14s %-10s %-10s %-12s %-14s\n", "policy",
              "capacity", "hit_ratio", "hit_cum", "evictions",
              "stale_redirects");

  // Unbounded reference: the paper's keep-everything peers.
  const RunResult reference = runs[next++];
  std::printf("  %-10s %-14s %-10s %-10s %-12llu %-14llu\n", "unbounded",
              "inf", bench::Fmt(reference.final_hit_ratio).c_str(),
              bench::Fmt(reference.cumulative_hit_ratio).c_str(),
              static_cast<unsigned long long>(reference.cache_evictions),
              static_cast<unsigned long long>(reference.stale_redirects));

  bool monotone = true;
  for (const std::string& policy : policies) {
    double prev = -1.0;
    for (uint64_t capacity : capacities) {
      const RunResult& r = runs[next++];
      std::printf("  %-10s %-14llu %-10s %-10s %-12llu %-14llu\n",
                  policy.c_str(), static_cast<unsigned long long>(capacity),
                  bench::Fmt(r.final_hit_ratio).c_str(),
                  bench::Fmt(r.cumulative_hit_ratio).c_str(),
                  static_cast<unsigned long long>(r.cache_evictions),
                  static_cast<unsigned long long>(r.stale_redirects));
      if (r.cumulative_hit_ratio + 1e-9 < prev) monotone = false;
      prev = r.cumulative_hit_ratio;
    }
    std::printf("\n");
  }

  bench::PrintComparison("hit ratio vs capacity (per policy)",
                         "monotone increasing",
                         monotone ? "monotone" : "NOT monotone");
  bench::PrintComparison(
      "largest capacity vs unbounded", "approaches paper behavior",
      bench::Fmt(reference.cumulative_hit_ratio) + " reference");

  // GDSF cost term: plain (cost 1) vs latency-aware (cost = measured
  // provider->client transfer distance). Distance-aware GDSF protects
  // far-fetched objects, so re-fetch traffic shifts towards nearby
  // providers and the mean transfer distance should not rise. Run under
  // severe pressure — with a roomy cache both models evict too rarely
  // to diverge.
  std::printf("\n  GDSF cost model (cache_cost), capacity %llu B\n",
              static_cast<unsigned long long>(4 * object_bytes));
  std::printf("  %-10s %-10s %-10s %-14s %-12s\n", "cost", "hit_ratio",
              "hit_cum", "transfer_ms", "evictions");
  RunResult uniform;
  RunResult distance;
  for (const std::string& cost : {std::string("uniform"),
                                  std::string("distance")}) {
    const RunResult& r = runs[next++];
    (cost == "uniform" ? uniform : distance) = r;
    std::printf("  %-10s %-10s %-10s %-14s %-12llu\n", cost.c_str(),
                bench::Fmt(r.final_hit_ratio).c_str(),
                bench::Fmt(r.cumulative_hit_ratio).c_str(),
                bench::Fmt(r.mean_transfer_ms, 1).c_str(),
                static_cast<unsigned long long>(r.cache_evictions));
  }
  bench::PrintComparison(
      "transfer distance, distance-aware vs plain GDSF", "lower or equal",
      bench::Fmt(distance.mean_transfer_ms, 1) + " vs " +
          bench::Fmt(uniform.mean_transfer_ms, 1) + " ms");
  return 0;
}
