// Ablation: robustness under injected faults (ISSUE 9 headline). Sweeps
// message loss x membership protocol x churn with the hardened client
// pipeline on (query timeouts, exponential-backoff retries, origin-server
// fallback, keepalive-ack suspicion), plus a partition-heal scenario and
// a no-hardening contrast arm.
//
// Shape to demonstrate: with retries the query success rate stays 1.0
// at >= 5% loss while lookup latency degrades smoothly; without the
// hardening the same loss silently loses queries. A scheduled partition
// drops real traffic yet heals without losing availability.
//
//   ./bench_ablation_faults quick json   -> BENCH_faults.json
#include <algorithm>
#include <cstdio>
#include <cstring>
#include <string>
#include <vector>

#include "bench_common.h"

namespace {

struct Arm {
  std::string label;
  std::string protocol;
  double loss = 0;
  bool churn = false;
  bool partition = false;
  bool hardened = true;
  flower::RunResult result;
};

void WriteJson(const std::string& path, const std::vector<Arm>& arms) {
  std::FILE* f = std::fopen(path.c_str(), "w");
  if (f == nullptr) {
    std::fprintf(stderr, "cannot write %s\n", path.c_str());
    std::exit(1);
  }
  std::fprintf(f, "[\n");
  for (size_t i = 0; i < arms.size(); ++i) {
    const Arm& a = arms[i];
    const flower::RunResult& r = a.result;
    std::fprintf(
        f,
        "  {\"label\":\"%s\",\"protocol\":\"%s\",\"loss\":%.2f,"
        "\"churn\":%s,\"partition\":%s,\"hardened\":%s,"
        "\"success_rate\":%.6f,\"hit_ratio\":%.6f,\"mean_lookup_ms\":%.3f,"
        "\"server_hits\":%llu,\"injected_drops\":%llu,"
        "\"partition_drops\":%llu,\"queries_timed_out\":%llu,"
        "\"query_retries\":%llu,\"silent_crashes\":%llu,"
        "\"suspicions_confirmed\":%llu}%s\n",
        a.label.c_str(), a.protocol.c_str(), a.loss,
        a.churn ? "true" : "false", a.partition ? "true" : "false",
        a.hardened ? "true" : "false", r.QuerySuccessRate(),
        r.final_hit_ratio, r.mean_lookup_ms,
        static_cast<unsigned long long>(r.server_hits),
        static_cast<unsigned long long>(r.injected_drops),
        static_cast<unsigned long long>(r.partition_drops),
        static_cast<unsigned long long>(r.queries_timed_out),
        static_cast<unsigned long long>(r.query_retries),
        static_cast<unsigned long long>(r.silent_crashes),
        static_cast<unsigned long long>(r.suspicions_confirmed),
        i + 1 < arms.size() ? "," : "");
  }
  std::fprintf(f, "]\n");
  std::fclose(f);
}

}  // namespace

int main(int argc, char** argv) {
  using namespace flower;

  // This bench writes its own JSON schema (per-arm fault counters), so
  // the json token is handled here, not by Driver.
  std::string json_path;
  std::vector<char*> fwd;
  for (int a = 0; a < argc; ++a) {
    if (a > 0 && std::strncmp(argv[a], "json", 4) == 0) {
      const char* eq = std::strchr(argv[a], '=');
      json_path = eq != nullptr ? eq + 1 : "BENCH_faults.json";
      continue;
    }
    fwd.push_back(argv[a]);
  }
  bench::Driver driver("faults", static_cast<int>(fwd.size()), fwd.data());
  driver.PrintHeader("Ablation: loss x protocol x churn (+ partitions)");
  SimConfig base = driver.config();

  // The hardened client pipeline, shared by every arm except the
  // explicit no-hardening contrast.
  auto harden = [](SimConfig* c) {
    c->query_timeout = 5 * kSecond;
    c->query_max_retries = 4;
    c->query_backoff_base = 2.0;
    c->suspicion_keepalive_misses = 2;
  };
  auto add_churn = [](SimConfig* c) {
    c->churn_enabled = true;
    c->churn_mean_session = 1 * kHour;
    c->churn_mean_downtime = 10 * kMinute;
    c->fault_silent_crash_probability = 0.5;  // half the crashes go dark
  };

  const double losses[] = {0.0, 0.01, 0.05, 0.10};
  const char* protocols[] = {"flower", "hyparview"};

  std::vector<Arm> arms;
  auto enqueue = [&driver, &arms](const SimConfig& c, Arm arm) {
    driver.Enqueue(c, "flower", arm.label);
    arms.push_back(std::move(arm));
  };

  for (bool churn : {false, true}) {
    for (double loss : losses) {
      for (const char* protocol : protocols) {
        SimConfig c = base;
        harden(&c);
        c.gossip_protocol = protocol;
        if (loss > 0) c.fault_loss = bench::Fmt(loss, 2);
        if (churn) add_churn(&c);
        Arm arm;
        arm.protocol = protocol;
        arm.loss = loss;
        arm.churn = churn;
        arm.label = std::string(protocol) + "/loss=" +
                    bench::Fmt(loss, 2) + (churn ? "/churn" : "");
        enqueue(c, std::move(arm));
      }
    }
  }
  // Contrast arm: the same 5% loss with the hardening off — shows what
  // the timeouts/retries actually buy.
  {
    SimConfig c = base;
    c.fault_loss = "0.05";
    Arm arm;
    arm.protocol = "flower";
    arm.loss = 0.05;
    arm.hardened = false;
    arm.label = "flower/loss=0.05/no-hardening";
    enqueue(c, std::move(arm));
  }
  // Partition-heal scenario: locality 0 is cut off from everyone for the
  // middle sixth of the run, then the window closes and the link heals.
  {
    SimConfig c = base;
    harden(&c);
    const SimTime start = c.duration / 3;
    const SimTime end = c.duration / 2;
    c.fault_partitions = "0|*@" + std::to_string(start) + "ms-" +
                         std::to_string(end) + "ms";
    Arm arm;
    arm.protocol = "flower";
    arm.partition = true;
    arm.label = "flower/partition-heal";
    enqueue(c, std::move(arm));
  }

  std::vector<RunResult> runs = driver.RunQueued();
  for (size_t i = 0; i < runs.size(); ++i) arms[i].result = runs[i];

  std::printf("  %-30s %-9s %-10s %-11s %-9s %-9s\n", "arm", "success",
              "hit_ratio", "lookup_ms", "drops", "retries");
  for (const Arm& a : arms) {
    const RunResult& r = a.result;
    std::printf("  %-30s %-9s %-10s %-11s %-9llu %-9llu\n", a.label.c_str(),
                bench::Fmt(r.QuerySuccessRate(), 4).c_str(),
                bench::Fmt(r.final_hit_ratio).c_str(),
                bench::Fmt(r.mean_lookup_ms, 1).c_str(),
                static_cast<unsigned long long>(r.injected_drops +
                                                r.partition_drops),
                static_cast<unsigned long long>(r.query_retries));
  }

  // Headline numbers.
  auto find_arm = [&arms](const std::string& label) -> const Arm* {
    for (const Arm& a : arms) {
      if (a.label == label) return &a;
    }
    return nullptr;
  };
  const Arm* clean = find_arm("flower/loss=0.00");
  const Arm* lossy = find_arm("flower/loss=0.05");
  const Arm* worst = find_arm("flower/loss=0.10");
  const Arm* soft = find_arm("flower/loss=0.05/no-hardening");
  const Arm* part = find_arm("flower/partition-heal");
  // Hard-cutoff caveat: the run stops dead at `duration`, so at extreme
  // loss a handful of queries are still mid-retry at the horizon. The
  // availability claim is therefore scoped to the <= 5% band; the 10%
  // arm stays in the table as the stress point.
  double min_success = 1.0;
  for (const Arm& a : arms) {
    if (a.hardened && !a.churn && a.loss <= 0.05) {
      min_success = std::min(min_success, a.result.QuerySuccessRate());
    }
  }
  bench::PrintComparison(
      "success at 5% loss (hardened vs not)", "1.0 vs < 1.0",
      bench::Fmt(lossy->result.QuerySuccessRate(), 4) + " vs " +
          bench::Fmt(soft->result.QuerySuccessRate(), 4));
  bench::PrintComparison("min success, hardened <= 5% loss (no churn)",
                         "1.0", bench::Fmt(min_success, 4));
  bench::PrintComparison(
      "lookup degradation 0% -> 10% loss", "smooth (latency, not loss)",
      bench::Fmt(clean->result.mean_lookup_ms, 1) + " -> " +
          bench::Fmt(worst->result.mean_lookup_ms, 1) + " ms");
  bench::PrintComparison(
      "partition heal", "availability held",
      bench::Fmt(part->result.QuerySuccessRate(), 4) + " success, " +
          std::to_string(part->result.partition_drops) + " msgs cut");

  if (!json_path.empty()) {
    WriteJson(json_path, arms);
    std::printf("  wrote %s\n", json_path.c_str());
  }
  return 0;
}
