// Table 2(c): effect of view size V_gossip on hit ratio and background
// bandwidth (L_gossip = 10, T_gossip = 30 min).
//
// Paper rows: V=20 -> HR 0.78, 74 bps | V=50 -> 0.86, 74 bps
//             V=70 -> 0.863, 74 bps
// Shape: bandwidth is flat in V (view size costs memory, not traffic);
// hit ratio improves slightly with larger views.
#include <cstdio>

#include "bench_common.h"

int main(int argc, char** argv) {
  using namespace flower;
  bench::Driver driver("table2c", argc, argv);
  driver.PrintHeader("Table 2(c): varying V_gossip (L=10, T=30min)");
  const SimConfig& base = driver.config();

  struct Row {
    int vgossip;
    double paper_hr;
    double paper_bps;
  };
  const Row rows[] = {{20, 0.78, 74}, {50, 0.86, 74}, {70, 0.863, 74}};

  for (const Row& row : rows) {
    SimConfig c = base;
    c.view_size = row.vgossip;
    driver.Enqueue(c, "flower", "V=" + std::to_string(row.vgossip));
  }
  std::vector<RunResult> runs = driver.RunQueued();

  std::printf("  %-8s %-22s %-22s\n", "V", "hit ratio (paper)",
              "background bps (paper)");
  double bps_min = 1e18, bps_max = 0;
  for (size_t i = 0; i < runs.size(); ++i) {
    const Row& row = rows[i];
    const RunResult& r = runs[i];
    bps_min = std::min(bps_min, r.background_bps);
    bps_max = std::max(bps_max, r.background_bps);
    std::printf("  %-8d %-7s (%0.3f)        %-9s (%0.0f)\n", row.vgossip,
                bench::Fmt(r.final_hit_ratio).c_str(), row.paper_hr,
                bench::Fmt(r.background_bps, 1).c_str(), row.paper_bps);
  }
  bench::PrintComparison("bandwidth spread across V values", "flat (74 bps)",
                         "max/min = " + bench::Fmt(bps_max / bps_min, 3) +
                             "x");
  return 0;
}
