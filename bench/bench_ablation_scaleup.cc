// Ablation: scale-up via extra ID bits (paper Sec 5.3). With small
// overlays (S_co), a second directory instance per (website, locality)
// absorbs the clients the first overlay cannot admit.
//
// Expected: with instances=2 more peers join overlays (larger P2P serving
// population), improving the hit ratio under tight S_co.
#include <cstdio>

#include "bench_common.h"

int main(int argc, char** argv) {
  using namespace flower;
  bench::Driver driver("ablation_scaleup", argc, argv);
  driver.config().max_content_overlay_size = 25;  // tight, to make b matter
  driver.PrintHeader("Ablation: scale-up instances (Sec 5.3), S_co=25");
  const SimConfig& base = driver.config();

  for (int instances : {1, 2}) {
    SimConfig c = base;
    c.scaleup_instances = instances;
    c.scaleup_extra_bits = instances > 1 ? 1 : 0;
    driver.Enqueue(c, "flower", "instances=" + std::to_string(instances));
  }
  std::vector<RunResult> runs = driver.RunQueued();
  size_t next = 0;

  std::printf("  %-12s %-14s %-12s %-12s\n", "instances", "participants",
              "hit_ratio", "server_hits");
  size_t participants_1 = 0, participants_2 = 0;
  for (int instances : {1, 2}) {
    const RunResult& r = runs[next++];
    if (instances == 1) participants_1 = r.participants;
    if (instances == 2) participants_2 = r.participants;
    std::printf("  %-12d %-14zu %-12s %-12llu\n", instances, r.participants,
                bench::Fmt(r.final_hit_ratio).c_str(),
                static_cast<unsigned long long>(r.server_hits));
  }
  bench::PrintComparison("second instance grows the serving population",
                         "larger deployments (Sec 5.3)",
                         std::to_string(participants_1) + " -> " +
                             std::to_string(participants_2));
  return 0;
}
