// Table 2(a): effect of gossip length L_gossip on hit ratio and background
// bandwidth (T_gossip = 30 min, V_gossip = 50).
//
// Paper rows:  L=5 -> HR 0.823, 37 bps | L=10 -> 0.86, 74 bps
//              L=20 -> 0.89, 147 bps
// Shape to reproduce: bandwidth roughly x2 from L=5 to 10 and x2 again to
// 20; hit ratio improves only marginally.
#include <cstdio>

#include "bench_common.h"

int main(int argc, char** argv) {
  using namespace flower;
  bench::Driver driver("table2a", argc, argv);
  driver.PrintHeader("Table 2(a): varying L_gossip (T=30min, V=50)");
  const SimConfig& base = driver.config();

  struct Row {
    int lgossip;
    double paper_hr;
    double paper_bps;
  };
  const Row rows[] = {{5, 0.823, 37}, {10, 0.86, 74}, {20, 0.89, 147}};

  for (const Row& row : rows) {
    SimConfig c = base;
    c.gossip_length = row.lgossip;
    driver.Enqueue(c, "flower", "L=" + std::to_string(row.lgossip));
  }
  std::vector<RunResult> runs = driver.RunQueued();

  std::printf("  %-8s %-22s %-22s\n", "L", "hit ratio (paper)",
              "background bps (paper)");
  double bps_l5 = 0, bps_l20 = 0;
  for (size_t i = 0; i < runs.size(); ++i) {
    const Row& row = rows[i];
    const RunResult& r = runs[i];
    if (row.lgossip == 5) bps_l5 = r.background_bps;
    if (row.lgossip == 20) bps_l20 = r.background_bps;
    std::printf("  %-8d %-7s (%0.3f)        %-8s (%0.0f)\n", row.lgossip,
                bench::Fmt(r.final_hit_ratio).c_str(), row.paper_hr,
                bench::Fmt(r.background_bps, 1).c_str(), row.paper_bps);
  }
  bench::PrintComparison("bandwidth ratio L=20 / L=5", "147/37 = 4.0x",
                         bench::Fmt(bps_l20 / bps_l5, 2) + "x");
  return 0;
}
