// Ablation: Squirrel strategy comparison (paper Sec 7 describes both the
// home-store and the directory strategies; the evaluation uses directory).
//
// Expected: home-store converges to a higher hit ratio faster (the home
// node always keeps a copy) but forces peers to store objects they never
// requested — the interest-awareness argument of the paper's Sec 7.
#include <cstdio>

#include "bench_common.h"

int main(int argc, char** argv) {
  using namespace flower;
  bench::Driver driver("ablation_homestore", argc, argv);
  driver.PrintHeader("Ablation: Squirrel home-store vs directory");

  for (const char* system : {"squirrel", "squirrel-home", "flower"}) {
    driver.Enqueue(driver.config(), system, system);
  }
  std::vector<RunResult> runs = driver.RunQueued();

  std::printf("  %-22s %-12s %-12s %-14s\n", "variant", "hit_ratio",
              "lookup_ms", "transfer_ms");
  for (const RunResult& r : runs) {
    std::printf("  %-22s %-12s %-12s %-14s\n", r.system_name.c_str(),
                bench::Fmt(r.final_hit_ratio).c_str(),
                bench::Fmt(r.mean_lookup_ms, 1).c_str(),
                bench::Fmt(r.mean_transfer_ms, 1).c_str());
  }
  bench::PrintComparison("flower still wins lookups against both variants",
                         "factor ~9 vs directory variant", "see rows above");
  return 0;
}
