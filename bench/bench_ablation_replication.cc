// Ablation: active replication (paper Sec 8 future work — "introduce
// active replication by pushing popular contents from some content overlay
// towards other overlays of the same website").
//
// Expected: replication pre-seeds sibling overlays with popular objects,
// reducing server hits / improving early hit ratio slightly, at a small
// control-traffic cost.
#include <cstdio>

#include "bench_common.h"

int main(int argc, char** argv) {
  using namespace flower;
  bench::Driver driver("ablation_replication", argc, argv);
  driver.PrintHeader("Ablation: active replication (Sec 8 extension)");
  const SimConfig& base = driver.config();

  // Queue both sections' points, then run once (parallel under jobs=N).
  for (bool enabled : {false, true}) {
    SimConfig c = base;
    c.active_replication = enabled;
    c.replication_period = 1 * kHour;
    c.replication_top_objects = 10;
    driver.Enqueue(c, "flower", enabled ? "on" : "off");
  }
  const uint64_t object_bytes = base.object_size_bits / 8;
  for (uint64_t capacity : {16 * object_bytes, 64 * object_bytes}) {
    for (double headroom : {0.0, 0.1, 0.3}) {
      SimConfig c = base;
      c.active_replication = true;
      c.replication_period = 1 * kHour;
      c.replication_top_objects = 10;
      c.cache_policy = "lru";
      c.cache_capacity_bytes = capacity;
      c.replication_admission_headroom = headroom;
      driver.Enqueue(c, "flower", "cap=" + std::to_string(capacity) +
                                      "/headroom=" + bench::Fmt(headroom, 1));
    }
  }
  std::vector<RunResult> runs = driver.RunQueued();
  size_t next = 0;

  std::printf("  %-14s %-12s %-12s %-14s\n", "replication", "hit_ratio",
              "hit_ratio_cum", "server_hits");
  RunResult off;
  RunResult on;
  for (bool enabled : {false, true}) {
    const RunResult& r = runs[next++];
    if (enabled) {
      on = r;
    } else {
      off = r;
    }
    std::printf("  %-14s %-12s %-12s %-14llu\n", enabled ? "on" : "off",
                bench::Fmt(r.final_hit_ratio).c_str(),
                bench::Fmt(r.cumulative_hit_ratio).c_str(),
                static_cast<unsigned long long>(r.server_hits));
  }
  bench::PrintComparison(
      "server hits with replication vs without", "fewer or equal",
      bench::Fmt(static_cast<double>(on.server_hits), 0) + " vs " +
          bench::Fmt(static_cast<double>(off.server_hits), 0));

  // Working-set protection: replication x cache capacity x admission
  // headroom. Replicas pushed into bounded stores can evict the peer's
  // own working set; the headroom hook declines offers near budget.
  // Expected: at a fixed capacity, raising the headroom trades replica
  // placements (more declines) against replication-induced evictions,
  // so the hit ratio should not fall as headroom grows.
  std::printf("\n  replication x capacity x admission headroom\n");
  std::printf("  %-14s %-10s %-10s %-10s %-12s %-14s\n", "capacity",
              "headroom", "hit_ratio", "hit_cum", "evictions",
              "replica_declines");
  bool protected_ws = true;
  for (uint64_t capacity : {16 * object_bytes, 64 * object_bytes}) {
    double prev = -1.0;
    for (double headroom : {0.0, 0.1, 0.3}) {
      const RunResult& r = runs[next++];
      std::printf("  %-14llu %-10s %-10s %-10s %-12llu %-14llu\n",
                  static_cast<unsigned long long>(capacity),
                  bench::Fmt(headroom, 1).c_str(),
                  bench::Fmt(r.final_hit_ratio).c_str(),
                  bench::Fmt(r.cumulative_hit_ratio).c_str(),
                  static_cast<unsigned long long>(r.cache_evictions),
                  static_cast<unsigned long long>(r.replica_declines));
      if (r.cumulative_hit_ratio + 0.02 < prev) protected_ws = false;
      prev = r.cumulative_hit_ratio;
    }
    std::printf("\n");
  }
  bench::PrintComparison("hit ratio vs headroom (per capacity)",
                         "non-decreasing",
                         protected_ws ? "non-decreasing" : "DEGRADES");
  return 0;
}
