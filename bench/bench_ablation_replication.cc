// Ablation: active replication (paper Sec 8 future work — "introduce
// active replication by pushing popular contents from some content overlay
// towards other overlays of the same website").
//
// Expected: replication pre-seeds sibling overlays with popular objects,
// reducing server hits / improving early hit ratio slightly, at a small
// control-traffic cost.
#include <cstdio>

#include "bench_common.h"

int main(int argc, char** argv) {
  using namespace flower;
  bench::Driver driver("ablation_replication", argc, argv);
  driver.PrintHeader("Ablation: active replication (Sec 8 extension)");
  const SimConfig& base = driver.config();

  std::printf("  %-14s %-12s %-12s %-14s\n", "replication", "hit_ratio",
              "hit_ratio_cum", "server_hits");
  RunResult off;
  RunResult on;
  for (bool enabled : {false, true}) {
    SimConfig c = base;
    c.active_replication = enabled;
    c.replication_period = 1 * kHour;
    c.replication_top_objects = 10;
    RunResult r = driver.Run(c, "flower", enabled ? "on" : "off");
    if (enabled) {
      on = r;
    } else {
      off = r;
    }
    std::printf("  %-14s %-12s %-12s %-14llu\n", enabled ? "on" : "off",
                bench::Fmt(r.final_hit_ratio).c_str(),
                bench::Fmt(r.cumulative_hit_ratio).c_str(),
                static_cast<unsigned long long>(r.server_hits));
  }
  bench::PrintComparison(
      "server hits with replication vs without", "fewer or equal",
      bench::Fmt(static_cast<double>(on.server_hits), 0) + " vs " +
          bench::Fmt(static_cast<double>(off.server_hits), 0));
  return 0;
}
