// Ablation: locality-awareness (the design decision the whole paper
// argues for). Two knobs are removed in turn:
//  1. "flat topology": intra-locality latencies = inter-locality latencies,
//     so being served from the local overlay buys nothing;
//  2. "single locality" (k = 1): one content overlay per website — no
//     partitioning and no locality-aware redirection at all.
// Expected: the default configuration wins on transfer distance; the flat
// topology erases that edge; k = 1 recovers hit ratio (no partitioning)
// but loses the short transfers.
#include <cstdio>

#include "bench_common.h"

int main(int argc, char** argv) {
  using namespace flower;
  bench::Driver driver("ablation_locality", argc, argv);
  driver.PrintHeader("Ablation: locality-awareness");
  const SimConfig& base = driver.config();

  std::printf("  %-18s %-12s %-12s %-14s\n", "variant", "hit_ratio",
              "lookup_ms", "transfer_ms");

  auto report = [](const char* name, const RunResult& r) {
    std::printf("  %-18s %-12s %-12s %-14s\n", name,
                bench::Fmt(r.final_hit_ratio).c_str(),
                bench::Fmt(r.mean_lookup_ms, 1).c_str(),
                bench::Fmt(r.mean_transfer_ms, 1).c_str());
  };

  driver.Enqueue(base, "flower", "locality-aware");

  SimConfig flat = base;
  flat.min_intra_latency = flat.min_inter_latency;
  flat.max_intra_latency = flat.max_inter_latency;
  driver.Enqueue(flat, "flower", "flat-topology");

  SimConfig single = base;
  single.num_localities = 1;
  single.locality_weights = {1.0};
  driver.Enqueue(single, "flower", "single-locality");

  std::vector<RunResult> runs = driver.RunQueued();
  const RunResult& with = runs[0];
  const RunResult& no_topology = runs[1];
  const RunResult& k1 = runs[2];
  report("locality-aware", with);
  report("flat topology", no_topology);
  report("single locality", k1);

  bench::PrintComparison(
      "transfer gain from locality clustering",
      "2x vs Squirrel (paper)",
      bench::Fmt(no_topology.mean_transfer_ms /
                     std::max(with.mean_transfer_ms, 1e-9), 1) +
          "x shorter than flat topology");
  return 0;
}
