// Microbenchmarks for the hot data structures of the simulator and the
// protocols (google-benchmark: event queue, Bloom filters, view merges,
// Zipf sampling, Chord routing steps, topology latency lookups), plus a
// `sweep` subcommand that runs a short end-to-end experiment per system
// through the Experiment builder — the machine-readable smoke run CI
// uploads as BENCH_micro.json:
//
//   ./bench_micro sweep quick json          # -> BENCH_micro.json
//   ./bench_micro                           # google-benchmark suite
#include <algorithm>
#include <cstring>

#include "bench_common.h"

#ifdef FLOWER_HAVE_GOOGLE_BENCHMARK
#include <benchmark/benchmark.h>

#include "bloom/bloom_filter.h"
#include "common/rng.h"
#include "common/zipf.h"
#include "dht/chord_ring.h"
#include "gossip/view.h"
#include "net/topology.h"
#include "sim/event_queue.h"
#include "sim/simulator.h"

namespace flower {
namespace {

void BM_EventQueuePushPop(benchmark::State& state) {
  const int64_t batch = state.range(0);
  Rng rng(1);
  for (auto _ : state) {
    EventQueue q;
    for (int64_t i = 0; i < batch; ++i) {
      q.Push(static_cast<SimTime>(rng.Next() % 100000), []() {});
    }
    SimTime t;
    while (!q.empty()) benchmark::DoNotOptimize(q.Pop(&t));
  }
  state.SetItemsProcessed(state.iterations() * batch);
}
BENCHMARK(BM_EventQueuePushPop)->Arg(1024)->Arg(16384);

void BM_SimulatorEventDispatch(benchmark::State& state) {
  for (auto _ : state) {
    Simulator sim(1);
    int count = 0;
    for (int i = 0; i < 10000; ++i) {
      sim.Schedule(i, [&count]() { ++count; });
    }
    sim.Run();
    benchmark::DoNotOptimize(count);
  }
  state.SetItemsProcessed(state.iterations() * 10000);
}
BENCHMARK(BM_SimulatorEventDispatch);

void BM_BloomAdd(benchmark::State& state) {
  BloomFilter f(4000, 5);
  uint64_t k = 0;
  for (auto _ : state) {
    f.Add(k++);
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_BloomAdd);

void BM_BloomQuery(benchmark::State& state) {
  BloomFilter f(4000, 5);
  for (uint64_t k = 0; k < 500; ++k) f.Add(k);
  uint64_t probe = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(f.MaybeContains(probe++));
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_BloomQuery);

void BM_SummaryRebuild(benchmark::State& state) {
  const int64_t objects = state.range(0);
  std::vector<ObjectId> ids;
  for (int64_t i = 0; i < objects; ++i) {
    ids.push_back(Mix64(static_cast<uint64_t>(i)));
  }
  ContentSummary s(static_cast<int>(objects), 8, 5);
  for (auto _ : state) {
    s.Rebuild(ids);
  }
  state.SetItemsProcessed(state.iterations() * objects);
}
BENCHMARK(BM_SummaryRebuild)->Arg(100)->Arg(500);

void BM_ZipfSample(benchmark::State& state) {
  ZipfSampler zipf(500, 0.8);
  Rng rng(1);
  for (auto _ : state) {
    benchmark::DoNotOptimize(zipf.Sample(&rng));
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_ZipfSample);

void BM_ViewMerge(benchmark::State& state) {
  Rng rng(1);
  auto summary = std::make_shared<ContentSummary>(500, 8, 5);
  std::vector<ViewEntry> incoming;
  for (int i = 0; i < 10; ++i) {
    ViewEntry e;
    e.addr = static_cast<PeerAddress>(100 + i);
    e.age = static_cast<int>(rng.Index(5));
    e.summary = summary;
    incoming.push_back(e);
  }
  View view(50);
  for (int i = 0; i < 50; ++i) {
    ViewEntry e;
    e.addr = static_cast<PeerAddress>(i);
    e.age = static_cast<int>(rng.Index(10));
    e.summary = summary;
    view.Insert(e, 9999);
  }
  for (auto _ : state) {
    View copy = view;
    copy.Merge(incoming, std::nullopt, 9999);
    benchmark::DoNotOptimize(copy.size());
  }
}
BENCHMARK(BM_ViewMerge);

void BM_TopologyLatency(benchmark::State& state) {
  SimConfig config;
  config.num_topology_nodes = 5000;
  Rng rng(1);
  Topology topo(config, &rng);
  Rng pick(2);
  for (auto _ : state) {
    NodeId a = static_cast<NodeId>(pick.Index(5000));
    NodeId b = static_cast<NodeId>(pick.Index(5000));
    benchmark::DoNotOptimize(topo.Latency(a, b));
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_TopologyLatency);

void BM_ChordOracleNeighborRead(benchmark::State& state) {
  const int64_t n = state.range(0);
  SimConfig config;
  config.num_topology_nodes = static_cast<int>(n) + 10;
  Simulator sim(1);
  Topology topo(config, sim.rng());
  Network net(&sim, &topo);
  ChordConfig cc;
  cc.id_bits = 32;
  ChordRing ring(cc);
  std::vector<std::unique_ptr<ChordNode>> nodes;
  for (int64_t i = 0; i < n; ++i) {
    Key id = ring.space().Clamp(Mix64(static_cast<uint64_t>(i) + 1));
    while (ring.Contains(id)) id = ring.space().Add(id, 1);
    auto node = std::make_unique<ChordNode>(&sim, &net, &ring, id);
    node->Activate(static_cast<NodeId>(i));
    node->JoinStructural();
    nodes.push_back(std::move(node));
  }
  size_t i = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(nodes[i % nodes.size()]->successor());
    ++i;
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_ChordOracleNeighborRead)->Arg(100)->Arg(1000);

void BM_RngNext(benchmark::State& state) {
  Rng rng(1);
  for (auto _ : state) {
    benchmark::DoNotOptimize(rng.Next());
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_RngNext);

}  // namespace
}  // namespace flower
#endif  // FLOWER_HAVE_GOOGLE_BENCHMARK

namespace flower {
namespace {

/// A fast macro sweep: one short run per registered system, emitting the
/// full per-window trajectories through the driver's sinks.
int RunMicroSweep(int argc, char** argv) {
  bench::Driver driver("micro", argc, argv);
  // Scale the (already small) quick/paper config down to smoke size.
  SimConfig& base = driver.config();
  base.num_topology_nodes = std::min(base.num_topology_nodes, 800);
  base.num_websites = std::min(base.num_websites, 10);
  base.num_active_websites = std::min(base.num_active_websites, 3);
  base.max_content_overlay_size =
      std::min(base.max_content_overlay_size, 30);
  base.duration = std::min<SimTime>(base.duration, 2 * kHour);
  base.queries_per_second = std::min(base.queries_per_second, 2.0);
  driver.PrintHeader("Micro sweep: one short run per system");

  std::printf("  %-22s %-12s %-12s %-14s\n", "system", "hit_ratio",
              "lookup_ms", "queries");
  for (const std::string& system : SystemRegistry::Instance().Keys()) {
    RunResult r = driver.Run(base, system, system);
    std::printf("  %-22s %-12s %-12s %-14llu\n", r.system_name.c_str(),
                bench::Fmt(r.final_hit_ratio).c_str(),
                bench::Fmt(r.mean_lookup_ms, 1).c_str(),
                static_cast<unsigned long long>(r.queries_submitted));
  }
  return 0;
}

}  // namespace
}  // namespace flower

int main(int argc, char** argv) {
  if (argc > 1 && std::strcmp(argv[1], "sweep") == 0) {
    return flower::RunMicroSweep(argc - 1, argv + 1);
  }
#ifdef FLOWER_HAVE_GOOGLE_BENCHMARK
  benchmark::Initialize(&argc, argv);
  if (benchmark::ReportUnrecognizedArguments(argc, argv)) return 1;
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return 0;
#else
  std::fprintf(stderr,
               "google-benchmark unavailable at build time; only "
               "`bench_micro sweep [quick] [key=value...] [json|csv]` "
               "is supported\n");
  return 2;
#endif
}
