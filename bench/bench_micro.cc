// Microbenchmarks for the hot data structures of the simulator and the
// protocols (google-benchmark: event queue, Bloom filters, view merges,
// Zipf sampling, Chord routing steps, topology latency lookups), plus
// two subcommands that need no google-benchmark:
//
//   ./bench_micro sweep quick json   # end-to-end smoke run per system
//                                    #   -> BENCH_micro.json
//   ./bench_micro engine json        # simulation-engine suite: pooled
//                                    #   EventQueue vs the legacy
//                                    #   shared_ptr/std::function queue
//                                    #   -> BENCH_engine.json
//   ./bench_micro shards quick json  # sharded-engine scaling suite
//                                    #   (shards x executor)
//                                    #   -> BENCH_shards.json
//   ./bench_micro                    # google-benchmark suite
#include <algorithm>
#include <chrono>
#include <cmath>
#include <cstdint>
#include <cstdlib>
#include <cstring>
#include <iterator>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "bench_common.h"
#include "common/rng.h"
#include "legacy_event_queue.h"
#include "sim/calendar_queue.h"
#include "sim/engine_queue.h"
#include "sim/event_queue.h"
#include "sim/simulator.h"

#ifdef FLOWER_HAVE_GOOGLE_BENCHMARK
#include <benchmark/benchmark.h>

#include "bloom/bloom_filter.h"
#include "common/rng.h"
#include "common/zipf.h"
#include "dht/chord_ring.h"
#include "gossip/view.h"
#include "net/topology.h"
#include "sim/event_queue.h"
#include "sim/simulator.h"

namespace flower {
namespace {

void BM_EventQueuePushPop(benchmark::State& state) {
  const int64_t batch = state.range(0);
  Rng rng(1);
  for (auto _ : state) {
    EventQueue q;
    for (int64_t i = 0; i < batch; ++i) {
      q.Push(static_cast<SimTime>(rng.Next() % 100000), []() {});
    }
    SimTime t;
    while (!q.empty()) benchmark::DoNotOptimize(q.Pop(&t));
  }
  state.SetItemsProcessed(state.iterations() * batch);
}
BENCHMARK(BM_EventQueuePushPop)->Arg(1024)->Arg(16384);

void BM_SimulatorEventDispatch(benchmark::State& state) {
  for (auto _ : state) {
    Simulator sim(1);
    int count = 0;
    for (int i = 0; i < 10000; ++i) {
      sim.Schedule(i, [&count]() { ++count; });
    }
    sim.Run();
    benchmark::DoNotOptimize(count);
  }
  state.SetItemsProcessed(state.iterations() * 10000);
}
BENCHMARK(BM_SimulatorEventDispatch);

void BM_BloomAdd(benchmark::State& state) {
  BloomFilter f(4000, 5);
  uint64_t k = 0;
  for (auto _ : state) {
    f.Add(k++);
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_BloomAdd);

void BM_BloomQuery(benchmark::State& state) {
  BloomFilter f(4000, 5);
  for (uint64_t k = 0; k < 500; ++k) f.Add(k);
  uint64_t probe = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(f.MaybeContains(probe++));
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_BloomQuery);

void BM_SummaryRebuild(benchmark::State& state) {
  const int64_t objects = state.range(0);
  std::vector<ObjectId> ids;
  for (int64_t i = 0; i < objects; ++i) {
    ids.push_back(Mix64(static_cast<uint64_t>(i)));
  }
  ContentSummary s(static_cast<int>(objects), 8, 5);
  for (auto _ : state) {
    s.Rebuild(ids);
  }
  state.SetItemsProcessed(state.iterations() * objects);
}
BENCHMARK(BM_SummaryRebuild)->Arg(100)->Arg(500);

void BM_ZipfSample(benchmark::State& state) {
  ZipfSampler zipf(500, 0.8);
  Rng rng(1);
  for (auto _ : state) {
    benchmark::DoNotOptimize(zipf.Sample(&rng));
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_ZipfSample);

void BM_ViewMerge(benchmark::State& state) {
  Rng rng(1);
  auto summary = std::make_shared<ContentSummary>(500, 8, 5);
  std::vector<ViewEntry> incoming;
  for (int i = 0; i < 10; ++i) {
    ViewEntry e;
    e.addr = static_cast<PeerAddress>(100 + i);
    e.age = static_cast<int>(rng.Index(5));
    e.summary = summary;
    incoming.push_back(e);
  }
  View view(50);
  for (int i = 0; i < 50; ++i) {
    ViewEntry e;
    e.addr = static_cast<PeerAddress>(i);
    e.age = static_cast<int>(rng.Index(10));
    e.summary = summary;
    view.Insert(e, 9999);
  }
  for (auto _ : state) {
    View copy = view;
    copy.Merge(incoming, std::nullopt, 9999);
    benchmark::DoNotOptimize(copy.size());
  }
}
BENCHMARK(BM_ViewMerge);

void BM_TopologyLatency(benchmark::State& state) {
  SimConfig config;
  config.num_topology_nodes = 5000;
  Rng rng(1);
  Topology topo(config, &rng);
  Rng pick(2);
  for (auto _ : state) {
    NodeId a = static_cast<NodeId>(pick.Index(5000));
    NodeId b = static_cast<NodeId>(pick.Index(5000));
    benchmark::DoNotOptimize(topo.Latency(a, b));
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_TopologyLatency);

void BM_ChordOracleNeighborRead(benchmark::State& state) {
  const int64_t n = state.range(0);
  SimConfig config;
  config.num_topology_nodes = static_cast<int>(n) + 10;
  Simulator sim(1);
  Topology topo(config, sim.rng());
  Network net(&sim, &topo);
  ChordConfig cc;
  cc.id_bits = 32;
  ChordRing ring(cc);
  std::vector<std::unique_ptr<ChordNode>> nodes;
  for (int64_t i = 0; i < n; ++i) {
    Key id = ring.space().Clamp(Mix64(static_cast<uint64_t>(i) + 1));
    while (ring.Contains(id)) id = ring.space().Add(id, 1);
    auto node = std::make_unique<ChordNode>(&sim, &net, &ring, id);
    node->Activate(static_cast<NodeId>(i));
    node->JoinStructural();
    nodes.push_back(std::move(node));
  }
  size_t i = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(nodes[i % nodes.size()]->successor());
    ++i;
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_ChordOracleNeighborRead)->Arg(100)->Arg(1000);

void BM_RngNext(benchmark::State& state) {
  Rng rng(1);
  for (auto _ : state) {
    benchmark::DoNotOptimize(rng.Next());
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_RngNext);

}  // namespace
}  // namespace flower
#endif  // FLOWER_HAVE_GOOGLE_BENCHMARK

namespace flower {
namespace {

// --- Engine microbenchmark suite (no google-benchmark needed) -----------------
//
// Measures the simulation engine's raw event throughput — push/pop,
// push/cancel/pop, and steady-state pop-one-push-one loops at several
// warm-queue depths — for three engines: the legacy
// shared_ptr/std::function queue, the pooled 4-ary heap EventQueue
// (`sim_engine=heap`), and the ladder CalendarQueue
// (`sim_engine=calendar`); plus end-to-end Simulator dispatch for the
// two production engines. The steady_64/steady_512 suites chart the
// crossover: at small live sets the heap's shallow sift beats the
// ladder's bucket machinery, at paper-scale sets the O(1) calendar
// wins. `json[=PATH]` writes BENCH_engine.json, the perf-trajectory
// file CI uploads, including one geomean summary row per engine.

/// The size class of the hot scheduling closures (message delivery
/// captures this+addresses+sizes+the message pointer, ~40 bytes): big
/// enough that std::function heap-allocates it, small enough for
/// EventFn's inline storage — exactly the gap the pool closes.
struct HotCapture {
  uint64_t a = 1, b = 2, c = 3, d = 4;
  uint64_t* sink = nullptr;
};

double MsBetween(std::chrono::steady_clock::time_point start,
                 std::chrono::steady_clock::time_point end) {
  return std::chrono::duration<double, std::milli>(end - start).count();
}

/// Event times, generated outside the timed region so both engines
/// measure queue work, not RNG draws.
std::vector<SimTime> MakeTimes(int64_t n, SimTime range) {
  Rng rng(7);
  std::vector<SimTime> times(static_cast<size_t>(n));
  for (SimTime& t : times) {
    t = static_cast<SimTime>(rng.Next() % static_cast<uint64_t>(range));
  }
  return times;
}

/// Dispatches one pending event the way each engine's production run
/// loop does: the pooled queue invokes the callback in its slot
/// (RunNextIfBefore), the legacy queue moves the std::function out.
inline bool DispatchOne(EventQueue& q, SimTime* t) {
  return q.RunNextIfBefore(kMaxSimTime, [t](SimTime when) { *t = when; });
}
inline bool DispatchOne(CalendarQueue& q, SimTime* t) {
  return q.RunNextIfBefore(kMaxSimTime, [t](SimTime when) { *t = when; });
}
inline bool DispatchOne(bench::LegacyEventQueue& q, SimTime* t) {
  if (q.empty()) return false;
  auto fn = q.Pop(t);
  fn();
  return true;
}

/// Pushes `n` events at pseudorandom times, then drains through the
/// dispatch path.
template <typename Queue>
double SuitePushPop(int64_t n, uint64_t* sink) {
  const std::vector<SimTime> times = MakeTimes(n, 1000000);
  HotCapture cap;
  cap.sink = sink;
  const auto start = std::chrono::steady_clock::now();
  Queue q;
  for (int64_t i = 0; i < n; ++i) {
    q.Push(times[static_cast<size_t>(i)],
           [cap]() { *cap.sink += cap.a + cap.c; });
  }
  SimTime t;
  while (DispatchOne(q, &t)) {
  }
  return MsBetween(start, std::chrono::steady_clock::now());
}

template <typename Queue>
struct HandleOf;
template <>
struct HandleOf<EventQueue> {
  using type = EventHandle;
};
template <>
struct HandleOf<CalendarQueue> {
  using type = EventHandle;
};
template <>
struct HandleOf<bench::LegacyEventQueue> {
  using type = bench::LegacyEventHandle;
};

/// Pushes `n`, cancels every other event through its handle, drains.
template <typename Queue>
double SuitePushCancelPop(int64_t n, uint64_t* sink) {
  const std::vector<SimTime> times = MakeTimes(n, 1000000);
  HotCapture cap;
  cap.sink = sink;
  const auto start = std::chrono::steady_clock::now();
  Queue q;
  std::vector<typename HandleOf<Queue>::type> handles;
  handles.reserve(static_cast<size_t>(n));
  for (int64_t i = 0; i < n; ++i) {
    handles.push_back(q.Push(times[static_cast<size_t>(i)],
                             [cap]() { *cap.sink += cap.b; }));
  }
  for (int64_t i = 0; i < n; i += 2) {
    handles[static_cast<size_t>(i)].Cancel();
  }
  SimTime t;
  while (DispatchOne(q, &t)) {
  }
  return MsBetween(start, std::chrono::steady_clock::now());
}

/// Steady state: a warm queue of Depth pending events; each op
/// dispatches the earliest and pushes a replacement — the pool's
/// slot-reuse sweet spot, and the shape of a simulation in its main
/// phase. Depth=16384 is a paper-scale pending set (where the calendar's
/// O(1) amortized ops pay off); 64 and 512 chart the small-warm-queue
/// crossover against the heap's shallow O(log n) sift.
template <typename Queue, int64_t Depth>
double SuiteSteadyState(int64_t n, uint64_t* sink) {
  const std::vector<SimTime> times = MakeTimes(n + Depth, 10000);
  HotCapture cap;
  cap.sink = sink;
  const auto start = std::chrono::steady_clock::now();
  Queue q;
  for (int64_t i = 0; i < Depth; ++i) {
    q.Push(times[static_cast<size_t>(i)], [cap]() { *cap.sink += cap.d; });
  }
  SimTime t = 0;
  for (int64_t i = 0; i < n; ++i) {
    DispatchOne(q, &t);
    q.Push(t + 1 + times[static_cast<size_t>(Depth + i)],
           [cap]() { *cap.sink += cap.d; });
  }
  return MsBetween(start, std::chrono::steady_clock::now());
}

/// The production message-delivery shape (Network::Send): every event
/// owns a heap message. The legacy engine needed a shared_ptr holder
/// around the unique_ptr (std::function requires copyable callables)
/// plus the std::function allocation — three allocations per delivery;
/// the pooled engine moves the unique_ptr straight into the slot-stored
/// closure — one (the message itself).
struct FakeMsg {
  uint64_t payload[12] = {1};  // ~100 B, a small protocol message
};

double SuiteDeliveryLegacy(int64_t n, uint64_t* sink) {
  constexpr int64_t kDepth = 16384;
  const std::vector<SimTime> times = MakeTimes(n + kDepth, 10000);
  const auto start = std::chrono::steady_clock::now();
  bench::LegacyEventQueue q;
  auto send = [&q, sink](SimTime at) {
    auto msg = std::make_unique<FakeMsg>();
    auto holder = std::make_shared<std::unique_ptr<FakeMsg>>(std::move(msg));
    q.Push(at, [holder, sink]() { *sink += (*holder)->payload[0]; });
  };
  for (int64_t i = 0; i < kDepth; ++i) {
    send(times[static_cast<size_t>(i)]);
  }
  SimTime t = 0;
  for (int64_t i = 0; i < n; ++i) {
    DispatchOne(q, &t);
    send(t + 1 + times[static_cast<size_t>(kDepth + i)]);
  }
  return MsBetween(start, std::chrono::steady_clock::now());
}

/// Slot-pool engines (heap and calendar) move the unique_ptr straight
/// into the slot-stored closure — one allocation (the message itself).
template <typename Queue>
double SuiteDeliveryPooled(int64_t n, uint64_t* sink) {
  constexpr int64_t kDepth = 16384;
  const std::vector<SimTime> times = MakeTimes(n + kDepth, 10000);
  const auto start = std::chrono::steady_clock::now();
  Queue q;
  auto send = [&q, sink](SimTime at) {
    auto msg = std::make_unique<FakeMsg>();
    q.Push(at, [m = std::move(msg), sink]() { *sink += m->payload[0]; });
  };
  for (int64_t i = 0; i < kDepth; ++i) {
    send(times[static_cast<size_t>(i)]);
  }
  SimTime t = 0;
  for (int64_t i = 0; i < n; ++i) {
    DispatchOne(q, &t);
    send(t + 1 + times[static_cast<size_t>(kDepth + i)]);
  }
  return MsBetween(start, std::chrono::steady_clock::now());
}

/// End-to-end Simulator dispatch (production engines only: the
/// Simulator is the production wiring around the queue).
double SuiteSimDispatch(int64_t n, uint64_t* sink, SimEngine engine) {
  HotCapture cap;
  cap.sink = sink;
  const auto start = std::chrono::steady_clock::now();
  Simulator sim(1, engine);
  for (int64_t i = 0; i < n; ++i) {
    sim.Schedule(i % 100000, [cap]() { *cap.sink += cap.a; });
  }
  sim.Run();
  return MsBetween(start, std::chrono::steady_clock::now());
}
double SuiteSimDispatchHeap(int64_t n, uint64_t* sink) {
  return SuiteSimDispatch(n, sink, SimEngine::kHeap);
}
double SuiteSimDispatchCalendar(int64_t n, uint64_t* sink) {
  return SuiteSimDispatch(n, sink, SimEngine::kCalendar);
}

struct EngineRecord {
  std::string suite;
  std::string engine;  // "legacy" | "pooled" (heap) | "calendar"
  int64_t events = 0;
  double wall_ms = 0;
  double events_per_sec = 0;
  double speedup_vs_legacy = 0;  // pooled/calendar records only; 0 = n/a
  double speedup_vs_pooled = 0;  // calendar records only; 0 = n/a
};

/// Best-of-`reps` wall time for one suite body.
template <typename SuiteFn>
EngineRecord MeasureSuite(const std::string& suite,
                          const std::string& engine, int64_t events,
                          int reps, uint64_t* sink, SuiteFn body) {
  double best_ms = 0;
  for (int r = 0; r < reps; ++r) {
    double ms = body(events, sink);
    if (r == 0 || ms < best_ms) best_ms = ms;
  }
  EngineRecord rec;
  rec.suite = suite;
  rec.engine = engine;
  rec.events = events;
  rec.wall_ms = best_ms;
  rec.events_per_sec =
      best_ms > 0 ? static_cast<double>(events) / (best_ms / 1000.0) : 0;
  return rec;
}

void WriteEngineJson(const std::string& path,
                     const std::vector<EngineRecord>& records) {
  std::FILE* f = std::fopen(path.c_str(), "w");
  if (f == nullptr) {
    std::fprintf(stderr, "cannot write %s\n", path.c_str());
    return;
  }
  std::fprintf(f, "[\n");
  for (size_t i = 0; i < records.size(); ++i) {
    const EngineRecord& r = records[i];
    std::fprintf(f,
                 "  {\"suite\":\"%s\",\"engine\":\"%s\",\"events\":%lld,"
                 "\"wall_ms\":%.3f,\"events_per_sec\":%.0f",
                 r.suite.c_str(), r.engine.c_str(),
                 static_cast<long long>(r.events), r.wall_ms,
                 r.events_per_sec);
    if (r.speedup_vs_legacy > 0) {
      std::fprintf(f, ",\"speedup_vs_legacy\":%.2f", r.speedup_vs_legacy);
    }
    if (r.speedup_vs_pooled > 0) {
      std::fprintf(f, ",\"speedup_vs_pooled\":%.2f", r.speedup_vs_pooled);
    }
    std::fprintf(f, "}%s\n", i + 1 < records.size() ? "," : "");
  }
  std::fprintf(f, "]\n");
  std::fclose(f);
}

int RunEngineBench(int argc, char** argv) {
  int64_t events = 400000;
  int reps = 5;
  std::string json_path;
  for (int a = 1; a < argc; ++a) {
    std::string tok = argv[a];
    size_t eq = tok.find('=');
    std::string key = eq == std::string::npos ? tok : tok.substr(0, eq);
    std::string value = eq == std::string::npos ? "" : tok.substr(eq + 1);
    if (key == "json") {
      json_path = value.empty() ? "BENCH_engine.json" : value;
    } else if (key == "events") {
      events = std::atoll(value.c_str());
    } else if (key == "reps") {
      reps = std::atoi(value.c_str());
    } else {
      std::fprintf(stderr,
                   "usage: bench_micro engine [json[=PATH]] [events=N] "
                   "[reps=N]\n");
      return 1;
    }
  }
  if (events < 1 || reps < 1) {
    std::fprintf(stderr, "events/reps must be >= 1\n");
    return 1;
  }

  std::printf("Engine microbenchmark: legacy vs pooled heap vs calendar "
              "(events=%lld, best of %d)\n",
              static_cast<long long>(events), reps);
  std::printf("  %-16s %-9s %-12s %-14s %-10s %-10s\n", "suite", "engine",
              "wall_ms", "events/sec", "vs_legacy", "vs_pooled");

  uint64_t sink = 0;
  std::vector<EngineRecord> records;
  struct Suite {
    const char* name;
    double (*legacy)(int64_t, uint64_t*);
    double (*pooled)(int64_t, uint64_t*);
    double (*calendar)(int64_t, uint64_t*);
  };
  const Suite suites[] = {
      {"push_pop", &SuitePushPop<bench::LegacyEventQueue>,
       &SuitePushPop<EventQueue>, &SuitePushPop<CalendarQueue>},
      {"push_cancel_pop", &SuitePushCancelPop<bench::LegacyEventQueue>,
       &SuitePushCancelPop<EventQueue>, &SuitePushCancelPop<CalendarQueue>},
      {"steady_64", &SuiteSteadyState<bench::LegacyEventQueue, 64>,
       &SuiteSteadyState<EventQueue, 64>,
       &SuiteSteadyState<CalendarQueue, 64>},
      {"steady_512", &SuiteSteadyState<bench::LegacyEventQueue, 512>,
       &SuiteSteadyState<EventQueue, 512>,
       &SuiteSteadyState<CalendarQueue, 512>},
      {"steady_state", &SuiteSteadyState<bench::LegacyEventQueue, 16384>,
       &SuiteSteadyState<EventQueue, 16384>,
       &SuiteSteadyState<CalendarQueue, 16384>},
      {"message_delivery", &SuiteDeliveryLegacy,
       &SuiteDeliveryPooled<EventQueue>, &SuiteDeliveryPooled<CalendarQueue>},
  };

  const auto print_row = [](const EngineRecord& r) {
    std::printf("  %-16s %-9s %-12s %-14s %-10s %-10s\n", r.suite.c_str(),
                r.engine.c_str(), bench::Fmt(r.wall_ms, 2).c_str(),
                bench::Fmt(r.events_per_sec, 0).c_str(),
                r.speedup_vs_legacy > 0
                    ? (bench::Fmt(r.speedup_vs_legacy, 2) + "x").c_str()
                    : "-",
                r.speedup_vs_pooled > 0
                    ? (bench::Fmt(r.speedup_vs_pooled, 2) + "x").c_str()
                    : "-");
  };

  double pooled_product = 1.0;
  double calendar_legacy_product = 1.0;
  double calendar_pooled_product = 1.0;
  for (const Suite& suite : suites) {
    EngineRecord legacy =
        MeasureSuite(suite.name, "legacy", events, reps, &sink, suite.legacy);
    EngineRecord pooled =
        MeasureSuite(suite.name, "pooled", events, reps, &sink, suite.pooled);
    EngineRecord calendar = MeasureSuite(suite.name, "calendar", events,
                                         reps, &sink, suite.calendar);
    pooled.speedup_vs_legacy =
        legacy.wall_ms > 0 ? legacy.wall_ms / pooled.wall_ms : 0;
    calendar.speedup_vs_legacy =
        legacy.wall_ms > 0 ? legacy.wall_ms / calendar.wall_ms : 0;
    calendar.speedup_vs_pooled =
        pooled.wall_ms > 0 ? pooled.wall_ms / calendar.wall_ms : 0;
    pooled_product *= pooled.speedup_vs_legacy;
    calendar_legacy_product *= calendar.speedup_vs_legacy;
    calendar_pooled_product *= calendar.speedup_vs_pooled;
    print_row(legacy);
    print_row(pooled);
    print_row(calendar);
    records.push_back(legacy);
    records.push_back(pooled);
    records.push_back(calendar);
  }
  EngineRecord dispatch_heap = MeasureSuite("sim_dispatch", "pooled", events,
                                            reps, &sink, &SuiteSimDispatchHeap);
  EngineRecord dispatch_cal = MeasureSuite(
      "sim_dispatch", "calendar", events, reps, &sink,
      &SuiteSimDispatchCalendar);
  dispatch_cal.speedup_vs_pooled = dispatch_heap.wall_ms > 0
                                       ? dispatch_heap.wall_ms /
                                             dispatch_cal.wall_ms
                                       : 0;
  print_row(dispatch_heap);
  print_row(dispatch_cal);
  records.push_back(dispatch_heap);
  records.push_back(dispatch_cal);

  const double n_suites = static_cast<double>(std::size(suites));
  EngineRecord geo_pooled;
  geo_pooled.suite = "geomean";
  geo_pooled.engine = "pooled";
  geo_pooled.speedup_vs_legacy = std::pow(pooled_product, 1.0 / n_suites);
  EngineRecord geo_calendar;
  geo_calendar.suite = "geomean";
  geo_calendar.engine = "calendar";
  geo_calendar.speedup_vs_legacy =
      std::pow(calendar_legacy_product, 1.0 / n_suites);
  geo_calendar.speedup_vs_pooled =
      std::pow(calendar_pooled_product, 1.0 / n_suites);
  records.push_back(geo_pooled);
  records.push_back(geo_calendar);
  std::printf("\n  geomean speedup pooled vs legacy:   %sx\n",
              bench::Fmt(geo_pooled.speedup_vs_legacy, 2).c_str());
  std::printf("  geomean speedup calendar vs legacy: %sx\n",
              bench::Fmt(geo_calendar.speedup_vs_legacy, 2).c_str());
  std::printf("  geomean speedup calendar vs pooled: %sx\n",
              bench::Fmt(geo_calendar.speedup_vs_pooled, 2).c_str());
  if (!json_path.empty()) {
    WriteEngineJson(json_path, records);
    std::printf("  wrote %s\n", json_path.c_str());
  }
  // Keep the compiler from eliding the callbacks entirely.
  if (sink == 0) std::printf("  (sink=0)\n");
  return 0;
}

/// A fast macro sweep: one short run per registered system, emitting the
/// full per-window trajectories through the driver's sinks.
int RunMicroSweep(int argc, char** argv) {
  bench::Driver driver("micro", argc, argv);
  // Scale the (already small) quick/paper config down to smoke size.
  SimConfig& base = driver.config();
  base.num_topology_nodes = std::min(base.num_topology_nodes, 800);
  base.num_websites = std::min(base.num_websites, 10);
  base.num_active_websites = std::min(base.num_active_websites, 3);
  base.max_content_overlay_size =
      std::min(base.max_content_overlay_size, 30);
  base.duration = std::min<SimTime>(base.duration, 2 * kHour);
  base.queries_per_second = std::min(base.queries_per_second, 2.0);
  driver.PrintHeader("Micro sweep: one short run per system");

  for (const std::string& system : SystemRegistry::Instance().Keys()) {
    driver.Enqueue(base, system, system);
  }
  std::vector<RunResult> runs = driver.RunQueued();

  std::printf("  %-22s %-12s %-12s %-14s\n", "system", "hit_ratio",
              "lookup_ms", "queries");
  for (const RunResult& r : runs) {
    std::printf("  %-22s %-12s %-12s %-14llu\n", r.system_name.c_str(),
                bench::Fmt(r.final_hit_ratio).c_str(),
                bench::Fmt(r.mean_lookup_ms, 1).c_str(),
                static_cast<unsigned long long>(r.queries_submitted));
  }
  return 0;
}

// --- Sharded-engine scaling suite ---------------------------------------------
//
// One end-to-end Flower run per (shards, executor) point: shards=1 is
// the serial engine baseline; shards >= 2 runs the locality-lane engine
// cooperatively and (where the system supports it) on the thread pool.
// Metrics (hit ratio, events) are asserted stable across sharded points;
// wall_ms/ev-s are host measurements -> BENCH_shards.json, uploaded by
// the shards=2 CI job. Real speedups need real cores; on one core the
// suite mainly tracks the sharding overhead.

struct ShardsRecord {
  std::string label;
  int shards = 1;
  std::string executor;
  uint64_t events = 0;
  double wall_ms = 0;
  double events_per_sec = 0;
  double hit_ratio = 0;
  double speedup_vs_serial = 0;
};

void WriteShardsJson(const std::string& path,
                     const std::vector<ShardsRecord>& records) {
  std::FILE* f = std::fopen(path.c_str(), "w");
  if (f == nullptr) {
    std::fprintf(stderr, "cannot write %s\n", path.c_str());
    return;
  }
  std::fprintf(f, "[\n");
  for (size_t i = 0; i < records.size(); ++i) {
    const ShardsRecord& r = records[i];
    std::fprintf(f,
                 "  {\"label\":\"%s\",\"shards\":%d,\"executor\":\"%s\","
                 "\"events\":%llu,\"wall_ms\":%.3f,"
                 "\"events_per_sec\":%.0f,\"hit_ratio\":%.6f,"
                 "\"speedup_vs_serial\":%.2f}%s\n",
                 r.label.c_str(), r.shards, r.executor.c_str(),
                 static_cast<unsigned long long>(r.events), r.wall_ms,
                 r.events_per_sec, r.hit_ratio, r.speedup_vs_serial,
                 i + 1 < records.size() ? "," : "");
  }
  std::fprintf(f, "]\n");
  std::fclose(f);
}

int RunShardsBench(int argc, char** argv) {
  std::string json_path;
  bool quick = false;
  for (int a = 1; a < argc; ++a) {
    std::string tok = argv[a];
    if (tok == "quick") {
      quick = true;
      continue;
    }
    size_t eq = tok.find('=');
    std::string key = eq == std::string::npos ? tok : tok.substr(0, eq);
    std::string value = eq == std::string::npos ? "" : tok.substr(eq + 1);
    if (key == "json") {
      json_path = value.empty() ? "BENCH_shards.json" : value;
    } else {
      std::fprintf(stderr,
                   "usage: bench_micro shards [quick] [json[=PATH]]\n");
      return 1;
    }
  }

  SimConfig base = quick ? bench::QuickConfig() : bench::PaperConfig();
  if (quick) base.duration = 2 * kHour;

  struct Point {
    int shards;
    const char* executor;  // shard_executor value
  };
  const Point points[] = {{1, "serial"},
                          {2, "serial"},
                          {2, "threads"},
                          {4, "threads"},
                          {6, "threads"}};

  std::printf("Sharded-engine scaling (flower, %s config, %lld h, "
              "%u hardware threads)\n",
              quick ? "quick" : "paper",
              static_cast<long long>(base.duration / kHour),
              std::thread::hardware_concurrency());
  if (std::thread::hardware_concurrency() <= 1) {
    std::printf("  note: single hardware thread — expect the suite to "
                "show sharding overhead, not speedup\n");
  }
  std::printf("  %-10s %-10s %-12s %-12s %-14s %-10s\n", "shards",
              "executor", "events", "wall_ms", "events/sec", "speedup");

  std::vector<ShardsRecord> records;
  double serial_wall = 0;
  for (const Point& p : points) {
    SimConfig c = base;
    c.shards = p.shards;
    c.shard_executor = p.executor;
    RunResult r = Experiment(c).WithSystem("flower").Run();
    ShardsRecord rec;
    rec.label = std::string("shards=") + std::to_string(p.shards) + "/" +
                p.executor;
    rec.shards = p.shards;
    rec.executor = p.executor;
    rec.events = r.events_processed;
    rec.wall_ms = r.wall_ms;
    rec.events_per_sec = r.EventsPerSec();
    rec.hit_ratio = r.final_hit_ratio;
    if (p.shards == 1) serial_wall = r.wall_ms;
    rec.speedup_vs_serial =
        serial_wall > 0 && r.wall_ms > 0 ? serial_wall / r.wall_ms : 0;
    records.push_back(rec);
    std::printf("  %-10d %-10s %-12llu %-12s %-14s %-10s\n", p.shards,
                p.executor,
                static_cast<unsigned long long>(rec.events),
                bench::Fmt(rec.wall_ms, 1).c_str(),
                bench::Fmt(rec.events_per_sec, 0).c_str(),
                p.shards == 1
                    ? "-"
                    : (bench::Fmt(rec.speedup_vs_serial, 2) + "x").c_str());
  }
  // Cross-check: every sharded point must report the identical
  // deterministic run (the executors/groupings may differ, the schedule
  // may not).
  for (size_t i = 2; i < records.size(); ++i) {
    if (records[i].events != records[1].events ||
        records[i].hit_ratio != records[1].hit_ratio) {
      std::fprintf(stderr,
                   "DETERMINISM VIOLATION: %s diverged from %s\n",
                   records[i].label.c_str(), records[1].label.c_str());
      return 1;
    }
  }
  std::printf("  sharded points agree on events + hit ratio "
              "(determinism cross-check passed)\n");
  if (!json_path.empty()) {
    WriteShardsJson(json_path, records);
    std::printf("  wrote %s\n", json_path.c_str());
  }
  return 0;
}

}  // namespace
}  // namespace flower

int main(int argc, char** argv) {
  if (argc > 1 && std::strcmp(argv[1], "sweep") == 0) {
    return flower::RunMicroSweep(argc - 1, argv + 1);
  }
  if (argc > 1 && std::strcmp(argv[1], "engine") == 0) {
    return flower::RunEngineBench(argc - 1, argv + 1);
  }
  if (argc > 1 && std::strcmp(argv[1], "shards") == 0) {
    return flower::RunShardsBench(argc - 1, argv + 1);
  }
#ifdef FLOWER_HAVE_GOOGLE_BENCHMARK
  benchmark::Initialize(&argc, argv);
  if (benchmark::ReportUnrecognizedArguments(argc, argv)) return 1;
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return 0;
#else
  std::fprintf(stderr,
               "google-benchmark unavailable at build time; only the "
               "`sweep`, `engine` and `shards` subcommands are "
               "supported\n");
  return 2;
#endif
}
