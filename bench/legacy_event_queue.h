// The pre-pool EventQueue, preserved verbatim as the baseline for the
// engine microbenchmark suite (bench_micro engine): every Push costs a
// shared_ptr<State> control block plus (usually) a std::function heap
// allocation. BENCH_engine.json tracks the pooled engine's speedup over
// this implementation from the rewrite onward.
//
// Benchmark-only code: nothing in src/ may include this.
#ifndef FLOWERCDN_BENCH_LEGACY_EVENT_QUEUE_H_
#define FLOWERCDN_BENCH_LEGACY_EVENT_QUEUE_H_

#include <cassert>
#include <cstdint>
#include <functional>
#include <memory>
#include <queue>
#include <vector>

#include "common/types.h"

namespace flower {
namespace bench {

class LegacyEventQueue;

class LegacyEventHandle {
 public:
  LegacyEventHandle() = default;

  void Cancel() {
    if (state_ == nullptr || state_->fired) return;
    state_->cancelled = true;
    state_->fn = nullptr;
  }

  bool pending() const {
    return state_ && !state_->fired && !state_->cancelled;
  }

 private:
  friend class LegacyEventQueue;
  struct State {
    std::function<void()> fn;
    bool cancelled = false;
    bool fired = false;
  };
  explicit LegacyEventHandle(std::shared_ptr<State> state)
      : state_(std::move(state)) {}
  std::shared_ptr<State> state_;
};

class LegacyEventQueue {
 public:
  LegacyEventQueue() = default;
  ~LegacyEventQueue() {
    while (!heap_.empty()) {
      heap_.top().state->fn = nullptr;
      heap_.pop();
    }
  }
  LegacyEventQueue(const LegacyEventQueue&) = delete;
  LegacyEventQueue& operator=(const LegacyEventQueue&) = delete;

  LegacyEventHandle Push(SimTime t, std::function<void()> fn) {
    assert(t >= 0);
    auto state = std::make_shared<LegacyEventHandle::State>();
    state->fn = std::move(fn);
    heap_.push(Item{t, next_seq_++, state});
    ++live_;
    return LegacyEventHandle(state);
  }

  bool empty() const {
    SkimCancelledConst();
    return heap_.empty();
  }

  SimTime NextTime() const {
    SkimCancelledConst();
    assert(!heap_.empty());
    return heap_.top().time;
  }

  std::function<void()> Pop(SimTime* t) {
    SkimCancelled();
    assert(!heap_.empty());
    Item item = heap_.top();
    heap_.pop();
    --live_;
    item.state->fired = true;
    *t = item.time;
    return std::move(item.state->fn);
  }

  size_t live_size() const { return live_; }

 private:
  struct Item {
    SimTime time;
    uint64_t seq;
    std::shared_ptr<LegacyEventHandle::State> state;
  };
  struct Later {
    bool operator()(const Item& a, const Item& b) const {
      if (a.time != b.time) return a.time > b.time;
      return a.seq > b.seq;
    }
  };

  void SkimCancelled() {
    while (!heap_.empty() && heap_.top().state->cancelled) {
      heap_.pop();
      --live_;
    }
  }
  void SkimCancelledConst() const {
    const_cast<LegacyEventQueue*>(this)->SkimCancelled();
  }

  std::priority_queue<Item, std::vector<Item>, Later> heap_;
  uint64_t next_seq_ = 0;
  size_t live_ = 0;
};

}  // namespace bench
}  // namespace flower

#endif  // FLOWERCDN_BENCH_LEGACY_EVENT_QUEUE_H_
