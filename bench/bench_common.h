// Shared scaffolding for the experiment drivers that regenerate the
// paper's tables and figures. Every driver funnels its runs through
// bench::Driver, which wraps the Experiment builder (src/api/) and owns
// the optional machine-readable sinks, so `./bench_fig6 quick json`
// writes BENCH_fig6.json next to the usual text tables.
#ifndef FLOWERCDN_BENCH_BENCH_COMMON_H_
#define FLOWERCDN_BENCH_BENCH_COMMON_H_

#include <memory>
#include <string>
#include <vector>

#include "api/experiment.h"
#include "api/sweep.h"
#include "common/config.h"

namespace flower {
namespace bench {

/// The paper's evaluation setup (Table 1 + Sec 6.1): 5000-node topology,
/// k = 6 localities, 100 websites on the D-ring, 6 active, 500 objects per
/// site, S_co = 100, 6 queries/s, 24 h, T_gossip = 30 min, L_gossip = 10,
/// V_gossip = 50, push threshold 0.1.
SimConfig PaperConfig();

/// Scaled-down setup for quick sanity runs (pass "quick" as argv[1]).
SimConfig QuickConfig();

/// Per-driver harness. Parses the CLI — optional leading "quick", then
/// any mix of key=value config overrides, the sink tokens `json[=PATH]`
/// / `csv[=PATH]` (defaults BENCH_<name>.json|csv) and `jobs=N`
/// (parallel sweep workers, default 1) — and runs experiments through
/// the SweepRunner with the parsed sinks attached.
///
/// Sweeps are two-phase: Enqueue every point first, then RunQueued once.
/// Points run on a thread pool when jobs > 1, but results and sink
/// output always come back in submission order, so a jobs=N run is
/// byte-identical to the serial one.
class Driver {
 public:
  /// Exits with a message on bad input.
  Driver(std::string name, int argc, char** argv);
  ~Driver();

  const SimConfig& config() const { return config_; }
  SimConfig& config() { return config_; }
  int jobs() const { return sweep_.jobs(); }

  /// Prints a header naming the experiment and the base config.
  void PrintHeader(const std::string& title) const;

  /// Queues one sweep point for RunQueued(); returns its result index.
  size_t Enqueue(const SimConfig& config, const std::string& system,
                 const std::string& label = std::string());

  /// Runs every queued point (in parallel when jobs=N was given),
  /// commits results to the shared sinks in submission order, and
  /// returns them in that order. Exits with a message on a failed run.
  std::vector<RunResult> RunQueued();

  /// Runs one experiment over `config` immediately (a one-point sweep),
  /// with the shared sinks attached.
  RunResult Run(const SimConfig& config, const std::string& system,
                const std::string& label = std::string());

  /// Same, over the driver's base config.
  RunResult Run(const std::string& system,
                const std::string& label = std::string());

 private:
  std::string name_;
  SimConfig config_;
  SweepRunner sweep_{1};
  std::vector<std::unique_ptr<ResultSink>> sinks_;
};

/// Prints a paper-vs-measured comparison line.
void PrintComparison(const std::string& what, const std::string& paper,
                     const std::string& measured);

std::string Fmt(double v, int decimals = 3);

}  // namespace bench
}  // namespace flower

#endif  // FLOWERCDN_BENCH_BENCH_COMMON_H_
