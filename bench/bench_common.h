// Shared scaffolding for the experiment drivers that regenerate the
// paper's tables and figures (see DESIGN.md Sec 4 for the index).
#ifndef FLOWERCDN_BENCH_BENCH_COMMON_H_
#define FLOWERCDN_BENCH_BENCH_COMMON_H_

#include <string>

#include "common/config.h"
#include "workload/runner.h"

namespace flower {
namespace bench {

/// The paper's evaluation setup (Table 1 + Sec 6.1): 5000-node topology,
/// k = 6 localities, 100 websites on the D-ring, 6 active, 500 objects per
/// site, S_co = 100, 6 queries/s, 24 h, T_gossip = 30 min, L_gossip = 10,
/// V_gossip = 50, push threshold 0.1.
SimConfig PaperConfig();

/// Scaled-down setup for quick sanity runs (pass "quick" as argv[1]).
SimConfig QuickConfig();

/// Parses CLI: optional leading "quick", then key=value overrides.
/// Exits with a message on bad input.
SimConfig ConfigFromArgs(int argc, char** argv);

/// Prints a header naming the experiment and the config.
void PrintHeader(const std::string& title, const SimConfig& config);

/// Prints a paper-vs-measured comparison line.
void PrintComparison(const std::string& what, const std::string& paper,
                     const std::string& measured);

std::string Fmt(double v, int decimals = 3);

}  // namespace bench
}  // namespace flower

#endif  // FLOWERCDN_BENCH_BENCH_COMMON_H_
