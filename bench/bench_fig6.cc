// Figure 6: hit ratio over time, Flower-CDN vs Squirrel.
//
// Paper shape: both converge toward 1; Squirrel converges faster (its
// search space is global while Flower-CDN partitions it into content
// overlays), leaving Flower ~13% behind at 24 h in the paper's run.
#include <cstdio>

#include "bench_common.h"

int main(int argc, char** argv) {
  using namespace flower;
  bench::Driver driver("fig6", argc, argv);
  driver.PrintHeader("Figure 6: hit ratio vs time, Flower-CDN vs Squirrel");
  const SimConfig& c = driver.config();

  driver.Enqueue(c, "flower", "flower");
  driver.Enqueue(c, "squirrel", "squirrel");
  std::vector<RunResult> runs = driver.RunQueued();
  const RunResult& flower = runs[0];
  const RunResult& squirrel = runs[1];

  std::printf("  %-10s %-14s %-14s\n", "hour", "flower", "squirrel");
  size_t windows = std::max(flower.hit_ratio_by_window.size(),
                            squirrel.hit_ratio_by_window.size());
  double per_hour = static_cast<double>(kHour) /
                    static_cast<double>(c.metrics_window);
  for (size_t i = 0; i < windows; ++i) {
    double f = i < flower.hit_ratio_by_window.size()
                   ? flower.hit_ratio_by_window[i]
                   : 0.0;
    double s = i < squirrel.hit_ratio_by_window.size()
                   ? squirrel.hit_ratio_by_window[i]
                   : 0.0;
    std::printf("  %-10s %-14s %-14s\n",
                bench::Fmt(static_cast<double>(i + 1) / per_hour, 1).c_str(),
                bench::Fmt(f).c_str(), bench::Fmt(s).c_str());
  }

  bench::PrintComparison("both converge toward 1", "yes",
                         bench::Fmt(flower.final_hit_ratio) + " / " +
                             bench::Fmt(squirrel.final_hit_ratio));
  bench::PrintComparison(
      "squirrel >= flower over the whole run (cumulative)",
      "flower lower by ~13% at 24h",
      "flower " + bench::Fmt(flower.cumulative_hit_ratio) + " vs squirrel " +
          bench::Fmt(squirrel.cumulative_hit_ratio));
  bench::PrintComparison(
      "flower pays more server hits (partitioned search)", "implied",
      bench::Fmt(static_cast<double>(flower.server_hits), 0) + " vs " +
          bench::Fmt(static_cast<double>(squirrel.server_hits), 0));
  return 0;
}
