// Memory-scaled runs: peers-vs-RSS and peers-vs-events/sec curves for
// the flyweight peer-state layer (interned object ids, SoA peer tables,
// arena message payloads, streamed metrics).
//
//   ./bench_scale [quick] [json[=PATH]]   # sweep -> BENCH_scale.json
//   ./bench_scale point key=value...      # one point (internal)
//
// The sweep crosses peers in {1k, 4k, 16k, 64k, 100k} (quick stops at
// 16k — the CI smoke) with directory_index_capacity in {unbounded, 64KB}
// and scaleup_extra_bits in {0, 1}. Every point runs in a child process
// (the driver re-execs itself with `point ...`): MemStats::PeakRssBytes
// reads VmHWM, which is process-lifetime-monotonic, so points sharing a
// process would inherit each other's peaks.
//
// Unlike the figure/table drivers, RSS and events/sec are host
// measurements, so BENCH_scale.json is a machine profile (like
// BENCH_engine.json), not a deterministic trajectory.
#include <cinttypes>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <vector>

#include "api/experiment.h"
#include "common/config.h"
#include "common/mem_stats.h"

namespace {

using namespace flower;

// The workload behind every point: a cache-rich universe, query rate
// scaled with the population so larger runs actually populate their
// peer tables, metrics streamed through a bounded ring (layer 4)
// instead of growing with the run.
//
// Memory-representative choices, deliberately heavier than the
// protocol-behavior suites:
//  - 2000 objects/site at 2 summary bits/object: the same filter bytes
//    as the paper-default 500 x 8 (m = 4000 bits either way), but a
//    catalog large enough that steady-state caches hold hundreds of
//    objects. Queries are the only mechanism that fills content caches
//    and directory claims; a near-empty cache would measure fixed
//    protocol state (Bloom snapshots, gossip views), not peer state.
//  - 15% of peers query per second over 6 simulated hours: the
//    workload driver is closed-loop (a busy client skips its turn), so
//    the effective rate saturates and the cache occupancy is set by
//    the duration. This compresses a multi-day trace into one run.
SimConfig ScaleConfig(int peers) {
  SimConfig c;
  c.num_topology_nodes = peers;
  c.num_localities = 6;
  c.num_websites = 30;
  c.num_active_websites = 4;
  c.num_objects_per_website = 2000;
  c.summary_bits_per_object = 2;
  // Overlay capacity scales with the population: with the paper's fixed
  // S_co the joined population saturates at active*localities*S_co and
  // the peer tables would never see the configured scale.
  c.max_content_overlay_size = peers / 20 > 40 ? peers / 20 : 40;
  c.duration = 6 * kHour;
  c.queries_per_second = peers > 300 ? peers * 0.15 : 45.0;
  c.metrics_max_points = 256;
  return c;
}

int RunPoint(int argc, char** argv) {
  int peers = 1000;
  std::vector<char*> rest;
  rest.push_back(argv[0]);
  for (int a = 2; a < argc; ++a) {
    if (std::strncmp(argv[a], "peers=", 6) == 0) {
      peers = std::atoi(argv[a] + 6);
    } else {
      rest.push_back(argv[a]);
    }
  }
  SimConfig config = ScaleConfig(peers);
  Status status = config.ApplyArgs(static_cast<int>(rest.size()), rest.data());
  if (!status.ok()) {
    std::fprintf(stderr, "bench_scale point: %s\n", status.message().c_str());
    return 1;
  }
  Result<RunResult> run = Experiment(config).WithSystem("flower").TryRun();
  if (!run.ok()) {
    std::fprintf(stderr, "bench_scale point: %s\n",
                 run.status().message().c_str());
    return 1;
  }
  const RunResult& r = run.value();
  // One machine-readable line for the parent sweep.
  std::printf("SCALEPOINT peers=%d rss=%" PRIu64 " events=%" PRIu64
              " wall_ms=%.0f participants=%zu served=%" PRIu64
              " queries=%" PRIu64 " hit=%.6f\n",
              peers, MemStats::PeakRssBytes(), r.events_processed, r.wall_ms,
              r.participants, r.queries_served, r.queries_submitted,
              r.final_hit_ratio);
  return 0;
}

struct Point {
  int peers = 0;
  std::string capacity;  // "unbounded" or bytes
  int extra_bits = 0;
  uint64_t rss = 0;
  uint64_t events = 0;
  double wall_ms = 0;
  size_t participants = 0;
  uint64_t served = 0;
  uint64_t queries = 0;
  double hit = 0;
};

bool SpawnPoint(const char* self, Point* p) {
  std::string cmd = std::string(self) + " point peers=" +
                    std::to_string(p->peers) +
                    " directory_index_capacity=" + p->capacity +
                    " scaleup_extra_bits=" + std::to_string(p->extra_bits);
  if (p->extra_bits > 0) cmd += " scaleup_instances=2";
  FILE* pipe = popen(cmd.c_str(), "r");
  if (pipe == nullptr) return false;
  char line[512];
  bool got = false;
  while (std::fgets(line, sizeof(line), pipe) != nullptr) {
    uint64_t rss, events, served, queries;
    double wall_ms, hit;
    int peers;
    size_t participants;
    if (std::sscanf(line,
                    "SCALEPOINT peers=%d rss=%" SCNu64 " events=%" SCNu64
                    " wall_ms=%lf participants=%zu served=%" SCNu64
                    " queries=%" SCNu64 " hit=%lf",
                    &peers, &rss, &events, &wall_ms, &participants, &served,
                    &queries, &hit) == 8) {
      p->rss = rss;
      p->events = events;
      p->wall_ms = wall_ms;
      p->participants = participants;
      p->served = served;
      p->queries = queries;
      p->hit = hit;
      got = true;
    }
  }
  return pclose(pipe) == 0 && got;
}

}  // namespace

int main(int argc, char** argv) {
  if (argc >= 2 && std::strcmp(argv[1], "point") == 0) {
    return RunPoint(argc, argv);
  }

  bool quick = false;
  std::string json_path;
  for (int a = 1; a < argc; ++a) {
    const std::string arg = argv[a];
    if (arg == "quick") {
      quick = true;
    } else if (arg == "json") {
      json_path = "BENCH_scale.json";
    } else if (arg.rfind("json=", 0) == 0) {
      json_path = arg.substr(5);
    } else {
      std::fprintf(stderr,
                   "usage: %s [quick] [json[=PATH]] | %s point key=value...\n",
                   argv[0], argv[0]);
      return 1;
    }
  }

  std::vector<int> peer_counts = {1000, 4000, 16000};
  if (!quick) {
    peer_counts.push_back(64000);
    peer_counts.push_back(100000);
  }
  struct Arm {
    const char* capacity;
    int extra_bits;
  };
  const Arm arms[] = {
      {"unbounded", 0}, {"65536", 0}, {"unbounded", 1}, {"65536", 1}};

  std::printf("bench_scale: flyweight peer state, %s sweep\n",
              quick ? "quick" : "full");
  std::printf("  %-8s %-11s %-5s %-10s %-9s %-10s %-9s %-8s\n", "peers",
              "capacity", "bits", "rss_mb", "b/peer", "events", "ev/s", "hit");

  std::vector<Point> points;
  for (int peers : peer_counts) {
    for (const Arm& arm : arms) {
      // Above 16k the full cross costs hours of wall clock; the curve
      // keeps the two ends of the spectrum (unbounded baseline and
      // bounded index + extra instances).
      if (peers > 16000 && arm.extra_bits == 0 &&
          std::strcmp(arm.capacity, "unbounded") != 0) {
        continue;
      }
      if (peers > 16000 && arm.extra_bits == 1 &&
          std::strcmp(arm.capacity, "unbounded") == 0) {
        continue;
      }
      Point p;
      p.peers = peers;
      p.capacity = arm.capacity;
      p.extra_bits = arm.extra_bits;
      if (!SpawnPoint(argv[0], &p)) {
        std::fprintf(stderr, "bench_scale: point peers=%d capacity=%s b=%d "
                             "failed\n",
                     peers, arm.capacity, arm.extra_bits);
        return 1;
      }
      const double evps = p.wall_ms > 0
                              ? static_cast<double>(p.events) /
                                    (p.wall_ms / 1000.0)
                              : 0;
      std::printf("  %-8d %-11s %-5d %-10.1f %-9.0f %-10" PRIu64
                  " %-9.0f %-8.4f\n",
                  p.peers, p.capacity.c_str(), p.extra_bits,
                  p.rss / (1024.0 * 1024.0),
                  static_cast<double>(p.rss) / p.peers, p.events, evps, p.hit);
      std::fflush(stdout);
      points.push_back(p);
    }
  }

  if (!json_path.empty()) {
    FILE* f = std::fopen(json_path.c_str(), "w");
    if (f == nullptr) {
      std::fprintf(stderr, "bench_scale: cannot write %s\n",
                   json_path.c_str());
      return 1;
    }
    std::fprintf(f, "{\n  \"bench\": \"scale\",\n  \"points\": [\n");
    for (size_t i = 0; i < points.size(); ++i) {
      const Point& p = points[i];
      const double evps = p.wall_ms > 0
                              ? static_cast<double>(p.events) /
                                    (p.wall_ms / 1000.0)
                              : 0;
      std::fprintf(
          f,
          "    {\"peers\": %d, \"directory_index_capacity\": \"%s\", "
          "\"scaleup_extra_bits\": %d, \"peak_rss_bytes\": %" PRIu64 ", "
          "\"bytes_per_peer\": %.1f, \"events\": %" PRIu64 ", "
          "\"events_per_sec\": %.0f, \"participants\": %zu, "
          "\"served\": %" PRIu64 ", \"queries\": %" PRIu64 ", "
          "\"hit_ratio\": %.6f}%s\n",
          p.peers, p.capacity.c_str(), p.extra_bits, p.rss,
          static_cast<double>(p.rss) / p.peers, p.events, evps,
          p.participants, p.served, p.queries, p.hit,
          i + 1 < points.size() ? "," : "");
    }
    std::fprintf(f, "  ]\n}\n");
    std::fclose(f);
    std::printf("  wrote %s (%zu points)\n", json_path.c_str(), points.size());
  }
  return 0;
}
