#include "bench_common.h"

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <sstream>

namespace flower {
namespace bench {

SimConfig PaperConfig() {
  SimConfig c;  // defaults are the paper's Table 1 already
  return c;
}

SimConfig QuickConfig() {
  SimConfig c;
  c.num_topology_nodes = 1500;
  c.num_websites = 30;
  c.num_active_websites = 4;
  c.max_content_overlay_size = 50;
  c.queries_per_second = 3.0;
  c.duration = 6 * kHour;
  return c;
}

Driver::Driver(std::string name, int argc, char** argv)
    : name_(std::move(name)), config_(PaperConfig()) {
  int start = 1;
  if (argc > 1 && std::strcmp(argv[1], "quick") == 0) {
    config_ = QuickConfig();
    start = 2;
  }
  for (int a = start; a < argc; ++a) {
    std::string tok = argv[a];
    size_t eq = tok.find('=');
    std::string key = eq == std::string::npos ? tok : tok.substr(0, eq);
    if (key == "jobs") {
      int jobs = eq == std::string::npos ? 0 : std::atoi(tok.c_str() + eq + 1);
      if (jobs < 1) {
        std::fprintf(stderr, "jobs=N requires N >= 1, got %s\n", tok.c_str());
        std::exit(1);
      }
      sweep_ = SweepRunner(jobs);
      continue;
    }
    if (key == "json" || key == "csv") {
      std::string path = eq == std::string::npos ? "" : tok.substr(eq + 1);
      if (path.empty()) path = "BENCH_" + name_ + "." + key;
      if (key == "json") {
        sinks_.push_back(std::make_unique<JsonResultSink>(path));
      } else {
        sinks_.push_back(std::make_unique<CsvResultSink>(path));
      }
      continue;
    }
    if (eq == std::string::npos) {
      std::fprintf(stderr, "expected key=value, got %s\n", tok.c_str());
      std::exit(1);
    }
    Status s = config_.Apply(key, tok.substr(eq + 1));
    if (!s.ok()) {
      std::fprintf(stderr, "%s\n", s.ToString().c_str());
      std::exit(1);
    }
  }
}

Driver::~Driver() {
  for (std::unique_ptr<ResultSink>& sink : sinks_) sink->Flush();
}

void Driver::PrintHeader(const std::string& title) const {
  std::printf("==============================================================\n");
  std::printf("%s\n", title.c_str());
  std::printf("  %s\n", config_.ToString().c_str());
  std::printf("==============================================================\n");
}

size_t Driver::Enqueue(const SimConfig& config, const std::string& system,
                       const std::string& label) {
  return sweep_.Add(config, system, label);
}

std::vector<RunResult> Driver::RunQueued() {
  std::vector<ResultSink*> sinks;
  sinks.reserve(sinks_.size());
  for (std::unique_ptr<ResultSink>& sink : sinks_) sinks.push_back(sink.get());
  Result<std::vector<RunResult>> results = sweep_.Run(sinks);
  if (!results.ok()) {
    std::fprintf(stderr, "experiment failed: %s\n",
                 results.status().ToString().c_str());
    // Flush the sinks so results committed before the failing point are
    // not lost (same contract as Experiment::Run).
    for (std::unique_ptr<ResultSink>& sink : sinks_) sink->Flush();
    std::exit(1);
  }
  return std::move(results).value();
}

RunResult Driver::Run(const SimConfig& config, const std::string& system,
                      const std::string& label) {
  size_t index = Enqueue(config, system, label);
  std::vector<RunResult> results = RunQueued();
  return std::move(results[index]);
}

RunResult Driver::Run(const std::string& system, const std::string& label) {
  return Run(config_, system, label);
}

void PrintComparison(const std::string& what, const std::string& paper,
                     const std::string& measured) {
  std::printf("  %-44s paper: %-14s measured: %s\n", what.c_str(),
              paper.c_str(), measured.c_str());
}

std::string Fmt(double v, int decimals) {
  std::ostringstream os;
  os.setf(std::ios::fixed);
  os.precision(decimals);
  os << v;
  return os.str();
}

}  // namespace bench
}  // namespace flower
