// Ablation: push threshold (paper Sec 6.2 text — "we do not show the
// results which illustrate similar performance for different values of
// push threshold (0.1; 0.5; 0.7)").
//
// Shape to reproduce: hit ratio and background traffic are nearly flat
// across the three thresholds.
#include <cstdio>

#include "bench_common.h"

int main(int argc, char** argv) {
  using namespace flower;
  bench::Driver driver("ablation_push", argc, argv);
  driver.PrintHeader("Ablation: push threshold {0.1, 0.5, 0.7}");
  const SimConfig& base = driver.config();

  const double thresholds[] = {0.1, 0.5, 0.7};
  for (double thr : thresholds) {
    SimConfig c = base;
    c.push_threshold = thr;
    driver.Enqueue(c, "flower", "thr=" + bench::Fmt(thr, 1));
  }
  std::vector<RunResult> runs = driver.RunQueued();

  std::printf("  %-10s %-12s %-14s %-12s\n", "threshold", "hit_ratio",
              "background_bps", "lookup_ms");
  double hr_min = 1.0, hr_max = 0.0;
  for (size_t i = 0; i < runs.size(); ++i) {
    double thr = thresholds[i];
    const RunResult& r = runs[i];
    hr_min = std::min(hr_min, r.final_hit_ratio);
    hr_max = std::max(hr_max, r.final_hit_ratio);
    std::printf("  %-10s %-12s %-14s %-12s\n", bench::Fmt(thr, 1).c_str(),
                bench::Fmt(r.final_hit_ratio).c_str(),
                bench::Fmt(r.background_bps, 1).c_str(),
                bench::Fmt(r.mean_lookup_ms, 1).c_str());
  }
  bench::PrintComparison("hit ratio spread across thresholds",
                         "similar performance",
                         bench::Fmt(hr_max - hr_min, 3));
  return 0;
}
