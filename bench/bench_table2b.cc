// Table 2(b): effect of gossip period T_gossip on hit ratio and background
// bandwidth (L_gossip = 10, V_gossip = 50).
//
// Paper rows: T=1min -> HR 0.94, 2239 bps | T=30min -> 0.86, 74 bps
//             T=1h   -> 0.81, 37 bps
// Shape: bandwidth scales ~1/T (x60 from 1 h to 1 min); hit ratio rises
// slowly with gossip frequency.
#include <cstdio>

#include "bench_common.h"

int main(int argc, char** argv) {
  using namespace flower;
  bench::Driver driver("table2b", argc, argv);
  driver.PrintHeader("Table 2(b): varying T_gossip (L=10, V=50)");
  const SimConfig& base = driver.config();

  struct Row {
    SimTime period;
    const char* label;
    double paper_hr;
    double paper_bps;
  };
  const Row rows[] = {{1 * kMinute, "1 min", 0.94, 2239},
                      {30 * kMinute, "30 min", 0.86, 74},
                      {1 * kHour, "1 hour", 0.81, 37}};

  for (const Row& row : rows) {
    SimConfig c = base;
    c.gossip_period = row.period;
    driver.Enqueue(c, "flower", std::string("T=") + row.label);
  }
  std::vector<RunResult> runs = driver.RunQueued();

  std::printf("  %-8s %-22s %-22s\n", "T", "hit ratio (paper)",
              "background bps (paper)");
  double bps_fast = 0, bps_slow = 0;
  for (size_t i = 0; i < runs.size(); ++i) {
    const Row& row = rows[i];
    const RunResult& r = runs[i];
    if (row.period == 1 * kMinute) bps_fast = r.background_bps;
    if (row.period == 1 * kHour) bps_slow = r.background_bps;
    std::printf("  %-8s %-7s (%0.2f)         %-9s (%0.0f)\n", row.label,
                bench::Fmt(r.final_hit_ratio).c_str(), row.paper_hr,
                bench::Fmt(r.background_bps, 1).c_str(), row.paper_bps);
  }
  bench::PrintComparison("bandwidth ratio T=1min / T=1h", "2239/37 = 60x",
                         bench::Fmt(bps_fast / bps_slow, 1) + "x");
  return 0;
}
