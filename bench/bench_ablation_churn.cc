// Ablation: churn (paper Sec 8 — "we are empirically analysing the
// behavior of Flower-CDN in presence of churn").
//
// Sweeps the mean session length; reports hit ratio, unresolved queries,
// directory replacements. The claim to support: gossip + keepalive + the
// replacement protocol keep the system serving under churn, with graceful
// hit-ratio degradation.
#include <cstdio>

#include "bench_common.h"

int main(int argc, char** argv) {
  using namespace flower;
  bench::Driver driver("ablation_churn", argc, argv);
  driver.config().churn_enabled = true;
  driver.config().churn_mean_downtime = 30 * kMinute;
  driver.PrintHeader("Ablation: churn (mean session length sweep)");
  const SimConfig& base = driver.config();

  std::printf("  %-14s %-12s %-12s %-12s %-12s\n", "mean_session",
              "hit_ratio", "served/sub", "dir_deaths", "promotions");

  struct Row {
    SimTime session;
    const char* label;
  };
  const Row rows[] = {{0, "no churn"},
                      {4 * kHour, "4 h"},
                      {1 * kHour, "1 h"},
                      {20 * kMinute, "20 min"}};
  for (const Row& row : rows) {
    SimConfig c = base;
    if (row.session == 0) {
      c.churn_enabled = false;
    } else {
      c.churn_mean_session = row.session;
    }
    driver.Enqueue(c, "flower", row.label);
  }
  std::vector<RunResult> runs = driver.RunQueued();
  for (size_t i = 0; i < runs.size(); ++i) {
    const Row& row = rows[i];
    const RunResult& r = runs[i];
    double served_frac =
        r.queries_submitted == 0
            ? 0
            : static_cast<double>(r.queries_served) /
                  static_cast<double>(r.queries_submitted);
    std::printf("  %-14s %-12s %-12s %-12llu %-12llu\n", row.label,
                bench::Fmt(r.final_hit_ratio).c_str(),
                bench::Fmt(served_frac).c_str(),
                static_cast<unsigned long long>(r.churn_failures +
                                                r.churn_leaves),
                static_cast<unsigned long long>(r.directory_promotions));
  }
  bench::PrintComparison("degradation under churn", "graceful (Sec 8 goal)",
                         "see hit_ratio column above");
  return 0;
}
