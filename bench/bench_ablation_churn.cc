// Ablation: churn (paper Sec 8 — "we are empirically analysing the
// behavior of Flower-CDN in presence of churn").
//
// Part 1 sweeps the mean session length; reports hit ratio, unresolved
// queries, directory replacements. The claim to support: gossip +
// keepalive + the replacement protocol keep the system serving under
// churn, with graceful hit-ratio degradation.
//
// Part 2 crosses churn with the bounded directory index
// (`directory_index_capacity`, src/cache/): when a directory dies and its
// heir's index budget is smaller than the donor's state, the handoff
// truncates honestly — the overlay then has to rediscover the dropped
// holders. The sweep measures how long the hit ratio takes to recover
// after the post-promotion dip, per index capacity, and emits the full
// trajectories to BENCH_ablation_churn.json (json CLI token; run in CI).
#include <algorithm>
#include <cstdio>
#include <string>
#include <vector>

#include "bench_common.h"

namespace {

using flower::RunResult;

/// Windows from the deepest post-warmup dip of the hit-ratio trajectory
/// until it first climbs back to >= 95% of the run's final ratio (the
/// run length if it never does). With churn promotions truncating
/// bounded heirs, smaller budgets dip deeper and recover slower.
size_t RecoveryWindows(const RunResult& r) {
  const std::vector<double>& hits = r.hit_ratio_by_window;
  if (hits.size() < 4 || r.final_hit_ratio <= 0) return 0;
  const size_t start = hits.size() / 4;  // skip the cold-start ramp
  size_t dip = start;
  for (size_t i = start; i < hits.size(); ++i) {
    if (hits[i] < hits[dip]) dip = i;
  }
  const double target = 0.95 * r.final_hit_ratio;
  for (size_t i = dip; i < hits.size(); ++i) {
    if (hits[i] >= target) return i - dip;
  }
  return hits.size() - dip;
}

}  // namespace

int main(int argc, char** argv) {
  using namespace flower;
  bench::Driver driver("ablation_churn", argc, argv);
  driver.config().churn_enabled = true;
  driver.config().churn_mean_downtime = 30 * kMinute;
  driver.PrintHeader("Ablation: churn (mean session length sweep)");
  const SimConfig& base = driver.config();

  std::printf("  %-14s %-12s %-12s %-12s %-12s\n", "mean_session",
              "hit_ratio", "served/sub", "dir_deaths", "promotions");

  struct Row {
    SimTime session;
    const char* label;
  };
  const Row rows[] = {{0, "no churn"},
                      {4 * kHour, "4 h"},
                      {1 * kHour, "1 h"},
                      {20 * kMinute, "20 min"}};
  for (const Row& row : rows) {
    SimConfig c = base;
    if (row.session == 0) {
      c.churn_enabled = false;
    } else {
      c.churn_mean_session = row.session;
    }
    driver.Enqueue(c, "flower", row.label);
  }
  std::vector<RunResult> runs = driver.RunQueued();
  for (size_t i = 0; i < runs.size(); ++i) {
    const Row& row = rows[i];
    const RunResult& r = runs[i];
    double served_frac =
        r.queries_submitted == 0
            ? 0
            : static_cast<double>(r.queries_served) /
                  static_cast<double>(r.queries_submitted);
    std::printf("  %-14s %-12s %-12s %-12llu %-12llu\n", row.label,
                bench::Fmt(r.final_hit_ratio).c_str(),
                bench::Fmt(served_frac).c_str(),
                static_cast<unsigned long long>(r.churn_failures +
                                                r.churn_leaves),
                static_cast<unsigned long long>(r.directory_promotions));
  }
  bench::PrintComparison("degradation under churn", "graceful (Sec 8 goal)",
                         "see hit_ratio column above");

  // --- Part 2: churn x bounded directory index --------------------------------
  // Fixed 1 h sessions; sweep the heir's index budget. Recovery time is
  // the post-dip climb of the hit-ratio trajectory (RecoveryWindows).
  std::printf("\nChurn x directory_index_capacity "
              "(1 h sessions; recovery after handoff truncation)\n");
  std::printf("  %-14s %-12s %-14s %-12s %-16s\n", "capacity",
              "hit_ratio", "dir_evictions", "promotions",
              "recovery_windows");

  struct CapRow {
    uint64_t capacity_bytes;
    const char* label;
  };
  const CapRow caps[] = {{0, "unbounded"},
                         {65536, "64KB"},
                         {16384, "16KB"},
                         {4096, "4KB"}};
  for (const CapRow& cap : caps) {
    SimConfig c = base;
    c.churn_enabled = true;
    c.churn_mean_session = 1 * kHour;
    // Finer windows than the default 30 min so the dip/recovery shape is
    // resolvable even on short (quick/CI) runs.
    c.metrics_window = std::min<SimTime>(c.metrics_window, 10 * kMinute);
    if (cap.capacity_bytes > 0) {
      c.directory_index_policy = "lru";
      c.directory_index_capacity_bytes = cap.capacity_bytes;
    }
    driver.Enqueue(c, "flower", std::string("dir_index=") + cap.label);
  }
  std::vector<RunResult> cap_runs = driver.RunQueued();
  for (size_t i = 0; i < cap_runs.size(); ++i) {
    const RunResult& r = cap_runs[i];
    std::printf("  %-14s %-12s %-14llu %-12llu %-16zu\n", caps[i].label,
                bench::Fmt(r.final_hit_ratio).c_str(),
                static_cast<unsigned long long>(r.dir_index_evictions),
                static_cast<unsigned long long>(r.directory_promotions),
                RecoveryWindows(r));
  }
  bench::PrintComparison(
      "recovery vs index budget",
      "smaller heirs recover slower (truncated handoffs)",
      "see recovery_windows column above");
  return 0;
}
