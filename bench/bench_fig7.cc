// Figure 7: lookup latency.
//  (a) Flower-CDN average lookup latency vs time: drops during warm-up and
//      stabilizes around ~120 ms (paper).
//  (b) distribution: 87% of Flower-CDN queries resolve within 150 ms while
//      61% of Squirrel's take more than 1050 ms (paper).
#include <cstdio>

#include "bench_common.h"

int main(int argc, char** argv) {
  using namespace flower;
  bench::Driver driver("fig7", argc, argv);
  driver.PrintHeader("Figure 7: lookup latency");
  const SimConfig& c = driver.config();

  driver.Enqueue(c, "flower", "flower");
  driver.Enqueue(c, "squirrel", "squirrel");
  std::vector<RunResult> runs = driver.RunQueued();
  const RunResult& flower = runs[0];
  const RunResult& squirrel = runs[1];

  std::printf("  (a) average lookup latency per window [ms]\n");
  std::printf("  %-10s %-12s\n", "hour", "flower");
  double per_hour = static_cast<double>(kHour) /
                    static_cast<double>(c.metrics_window);
  for (size_t i = 0; i < flower.lookup_ms_by_window.size(); ++i) {
    std::printf("  %-10s %-12s\n",
                bench::Fmt(static_cast<double>(i + 1) / per_hour, 1).c_str(),
                bench::Fmt(flower.lookup_ms_by_window[i], 1).c_str());
  }
  size_t n = flower.lookup_ms_by_window.size();
  if (n >= 2) {
    bench::PrintComparison(
        "(a) stabilized average lookup", "~120 ms",
        bench::Fmt(flower.lookup_ms_by_window[n - 1], 1) + " ms");
  }

  std::printf("\n  (b) lookup latency distribution\n");
  const double kBuckets[] = {150, 300, 450, 600, 750, 900, 1050};
  std::printf("  %-12s %-10s %-10s\n", "< ms", "flower", "squirrel");
  for (double b : kBuckets) {
    std::printf("  %-12s %-10s %-10s\n", bench::Fmt(b, 0).c_str(),
                bench::Fmt(flower.LookupFractionBelow(b)).c_str(),
                bench::Fmt(squirrel.LookupFractionBelow(b)).c_str());
  }
  bench::PrintComparison("(b) flower queries within 150 ms", "87%",
                         bench::Fmt(100 * flower.LookupFractionBelow(150), 1) +
                             "%");
  bench::PrintComparison(
      "(b) squirrel queries over 1050 ms", "61%",
      bench::Fmt(100 * (1 - squirrel.LookupFractionBelow(1050)), 1) + "%");
  bench::PrintComparison(
      "mean lookup reduction factor", "~9x",
      bench::Fmt(squirrel.mean_lookup_ms / flower.mean_lookup_ms, 1) + "x");
  return 0;
}
