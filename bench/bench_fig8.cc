// Figure 8: transfer distance.
//  (a) Flower-CDN average transfer distance vs time: high while origin
//      servers provide objects, then drops to ~80 ms (paper).
//  (b) distribution: 59% of Flower-CDN queries served from within 100 ms
//      vs 17% for Squirrel (paper).
#include <cstdio>

#include "bench_common.h"

int main(int argc, char** argv) {
  using namespace flower;
  bench::Driver driver("fig8", argc, argv);
  driver.PrintHeader("Figure 8: transfer distance");
  const SimConfig& c = driver.config();

  driver.Enqueue(c, "flower", "flower");
  driver.Enqueue(c, "squirrel", "squirrel");
  std::vector<RunResult> runs = driver.RunQueued();
  const RunResult& flower = runs[0];
  const RunResult& squirrel = runs[1];

  std::printf("  (a) average transfer distance per window [ms]\n");
  std::printf("  %-10s %-12s\n", "hour", "flower");
  double per_hour = static_cast<double>(kHour) /
                    static_cast<double>(c.metrics_window);
  for (size_t i = 0; i < flower.transfer_ms_by_window.size(); ++i) {
    std::printf("  %-10s %-12s\n",
                bench::Fmt(static_cast<double>(i + 1) / per_hour, 1).c_str(),
                bench::Fmt(flower.transfer_ms_by_window[i], 1).c_str());
  }
  size_t n = flower.transfer_ms_by_window.size();
  if (n >= 2) {
    bench::PrintComparison(
        "(a) warm transfer distance", "~80 ms",
        bench::Fmt(flower.transfer_ms_by_window[n - 1], 1) + " ms");
    bench::PrintComparison(
        "(a) cold start higher than warm", "drops after warm-up",
        bench::Fmt(flower.transfer_ms_by_window[0], 1) + " -> " +
            bench::Fmt(flower.transfer_ms_by_window[n - 1], 1) + " ms");
  }

  std::printf("\n  (b) transfer distance distribution\n");
  const double kBuckets[] = {50, 100, 200, 300, 400, 500};
  std::printf("  %-12s %-10s %-10s\n", "< ms", "flower", "squirrel");
  for (double b : kBuckets) {
    std::printf("  %-12s %-10s %-10s\n", bench::Fmt(b, 0).c_str(),
                bench::Fmt(flower.TransferFractionBelow(b)).c_str(),
                bench::Fmt(squirrel.TransferFractionBelow(b)).c_str());
  }
  bench::PrintComparison(
      "(b) flower transfers within 100 ms", "59%",
      bench::Fmt(100 * flower.TransferFractionBelow(100), 1) + "%");
  bench::PrintComparison(
      "(b) squirrel transfers within 100 ms", "17%",
      bench::Fmt(100 * squirrel.TransferFractionBelow(100), 1) + "%");
  bench::PrintComparison(
      "mean transfer reduction factor", "~2x",
      bench::Fmt(squirrel.mean_transfer_ms / flower.mean_transfer_ms, 1) +
          "x");
  return 0;
}
