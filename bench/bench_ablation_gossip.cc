// Ablation: membership scalability (ISSUE 6 headline). Sweeps the
// locality size S_co x gossip_protocol x churn and contrasts the paper's
// full-view gossip (view_size = S_co, so a member tracks its whole
// overlay, as Table 1's V_gossip >= S_co intends) with HyParView partial
// views + Plumtree dissemination.
//
// Shape to demonstrate: hyparview holds the hit ratio within a few
// points of flower at every S_co while its per-peer membership state
// stays near-constant (bounded active+passive views, capped summary
// cache) and its steady-state background traffic stays flat-or-lower —
// flower's state grows ~linearly with the overlay size.
//
//   ./bench_ablation_gossip quick json   -> BENCH_gossip.json
//
// A single hot website concentrates clients so the overlays actually
// saturate their S_co cap; otherwise every sweep point would measure the
// same (demand-limited) overlay population.
#include <algorithm>
#include <cstdio>
#include <cstring>
#include <string>
#include <vector>

#include "bench_common.h"

namespace {

struct Arm {
  std::string label;
  std::string protocol;
  int s_co = 0;
  bool churn = false;
  flower::RunResult result;
};

/// Per-peer membership state: tracked contacts plus cached summaries.
double StateEntries(const flower::RunResult& r) {
  return r.mean_active_view + r.mean_passive_view + r.mean_summaries_known;
}

void WriteJson(const std::string& path, const std::vector<Arm>& arms) {
  std::FILE* f = std::fopen(path.c_str(), "w");
  if (f == nullptr) {
    std::fprintf(stderr, "cannot write %s\n", path.c_str());
    std::exit(1);
  }
  std::fprintf(f, "[\n");
  for (size_t i = 0; i < arms.size(); ++i) {
    const Arm& a = arms[i];
    const flower::RunResult& r = a.result;
    std::fprintf(
        f,
        "  {\"label\":\"%s\",\"protocol\":\"%s\",\"s_co\":%d,"
        "\"churn\":%s,\"hit_ratio\":%.6f,\"steady_background_bps\":%.3f,"
        "\"mean_active_view\":%.3f,\"mean_passive_view\":%.3f,"
        "\"mean_summaries_known\":%.3f,\"state_entries\":%.3f,"
        "\"hyparview_shuffles\":%llu,\"plumtree_grafts\":%llu,"
        "\"plumtree_prunes\":%llu,\"mean_summary_staleness\":%.3f}%s\n",
        a.label.c_str(), a.protocol.c_str(), a.s_co,
        a.churn ? "true" : "false", r.final_hit_ratio,
        r.SteadyStateBackgroundBps(), r.mean_active_view,
        r.mean_passive_view, r.mean_summaries_known, StateEntries(r),
        static_cast<unsigned long long>(r.hyparview_shuffles),
        static_cast<unsigned long long>(r.plumtree_grafts),
        static_cast<unsigned long long>(r.plumtree_prunes),
        r.mean_summary_staleness, i + 1 < arms.size() ? "," : "");
  }
  std::fprintf(f, "]\n");
  std::fclose(f);
}

}  // namespace

int main(int argc, char** argv) {
  using namespace flower;

  // This bench writes its own JSON schema (per-arm membership state for
  // both protocols), so the json token is handled here, not by Driver.
  std::string json_path;
  std::vector<char*> fwd;
  for (int a = 0; a < argc; ++a) {
    if (a > 0 && std::strncmp(argv[a], "json", 4) == 0) {
      const char* eq = std::strchr(argv[a], '=');
      json_path = eq != nullptr ? eq + 1 : "BENCH_gossip.json";
      continue;
    }
    fwd.push_back(argv[a]);
  }
  bench::Driver driver("gossip", static_cast<int>(fwd.size()), fwd.data());
  driver.PrintHeader("Ablation: S_co x gossip_protocol x churn");
  SimConfig base = driver.config();
  base.num_active_websites = 1;  // concentrate demand: saturate S_co

  const int s_full = base.max_content_overlay_size;
  const int sweep[] = {std::max(s_full / 4, 5), std::max(s_full / 2, 10),
                       s_full};
  const char* protocols[] = {"flower", "hyparview"};

  std::vector<Arm> arms;
  for (bool churn : {false, true}) {
    for (int s_co : sweep) {
      for (const char* protocol : protocols) {
        SimConfig c = base;
        c.max_content_overlay_size = s_co;
        c.gossip_protocol = protocol;
        if (std::strcmp(protocol, "flower") == 0) {
          // The paper's sizing: the view can span the whole overlay.
          c.view_size = s_co;
        }
        if (churn) {
          c.churn_enabled = true;
          c.churn_mean_session = 1 * kHour;
          c.churn_mean_downtime = 10 * kMinute;
        }
        Arm arm;
        arm.protocol = protocol;
        arm.s_co = s_co;
        arm.churn = churn;
        arm.label = std::string(protocol) + "/S_co=" +
                    std::to_string(s_co) + (churn ? "/churn" : "");
        driver.Enqueue(c, "flower", arm.label);
        arms.push_back(std::move(arm));
      }
    }
  }
  std::vector<RunResult> runs = driver.RunQueued();
  for (size_t i = 0; i < runs.size(); ++i) arms[i].result = runs[i];

  std::printf("  %-24s %-10s %-11s %-9s %-9s %-9s\n", "arm", "hit_ratio",
              "bg_steady", "views", "summaries", "state");
  for (const Arm& a : arms) {
    const RunResult& r = a.result;
    std::printf("  %-24s %-10s %-11s %-9s %-9s %-9s\n", a.label.c_str(),
                bench::Fmt(r.final_hit_ratio).c_str(),
                bench::Fmt(r.SteadyStateBackgroundBps(), 1).c_str(),
                bench::Fmt(r.mean_active_view + r.mean_passive_view, 1).c_str(),
                bench::Fmt(r.mean_summaries_known, 1).c_str(),
                bench::Fmt(StateEntries(r), 1).c_str());
  }

  // Headline numbers: state growth from the smallest to the largest
  // overlay, and the worst hit-ratio gap at any matched sweep point.
  auto find_arm = [&arms](const char* protocol, int s_co,
                          bool churn) -> const Arm* {
    for (const Arm& a : arms) {
      if (a.protocol == protocol && a.s_co == s_co && a.churn == churn) {
        return &a;
      }
    }
    return nullptr;
  };
  const int s_min = sweep[0];
  const Arm* fl_min = find_arm("flower", s_min, false);
  const Arm* fl_max = find_arm("flower", s_full, false);
  const Arm* hp_min = find_arm("hyparview", s_min, false);
  const Arm* hp_max = find_arm("hyparview", s_full, false);
  double fl_growth = StateEntries(fl_max->result) /
                     std::max(StateEntries(fl_min->result), 1.0);
  double hp_growth = StateEntries(hp_max->result) /
                     std::max(StateEntries(hp_min->result), 1.0);
  double worst_gap = 0;
  for (const Arm& a : arms) {
    if (a.protocol != "hyparview") continue;
    const Arm* fl = find_arm("flower", a.s_co, a.churn);
    worst_gap = std::max(worst_gap,
                         fl->result.final_hit_ratio -
                             a.result.final_hit_ratio);
  }
  bench::PrintComparison(
      "membership state growth x" + std::to_string(s_full / s_min) +
          " S_co (flower vs hyparview)",
      "~linear vs ~flat", bench::Fmt(fl_growth, 2) + "x vs " +
                              bench::Fmt(hp_growth, 2) + "x");
  bench::PrintComparison("worst hyparview hit-ratio gap", "a few points",
                         bench::Fmt(worst_gap, 3));
  bench::PrintComparison(
      "steady background at S_co=" + std::to_string(s_full) +
          " (flower vs hyparview)",
      "flat or lower",
      bench::Fmt(fl_max->result.SteadyStateBackgroundBps(), 1) + " vs " +
          bench::Fmt(hp_max->result.SteadyStateBackgroundBps(), 1) + " bps");

  if (!json_path.empty()) {
    WriteJson(json_path, arms);
    std::printf("  wrote %s\n", json_path.c_str());
  }
  return 0;
}
