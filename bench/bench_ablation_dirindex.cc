// Ablation: bounded directory index (src/cache/directory_store.h). The
// paper's directory peers index every content peer of their (website,
// locality); the scale-up story (Sec 5.3) needs small directory nodes
// whose peer -> content index is itself capacity-bounded. This sweep
// bounds every directory's index and compares replacement policies
// across overlay sizes, producing hit-ratio curves per (capacity,
// policy) next to an unbounded reference per peer count.
//
// Expected: hit ratio grows monotonically with index capacity and
// converges to the unbounded (paper) reference once the budget covers
// the overlay's footprint; below that, dir_index_evictions rise and
// queries that the evicted entries would have answered fall to the
// origin server. Larger overlays (S_co) need proportionally more index
// bytes to reach the same hit ratio.
#include <cstdio>
#include <string>
#include <vector>

#include "bench_common.h"
#include "cache/directory_store.h"

int main(int argc, char** argv) {
  using namespace flower;
  bench::Driver driver("ablation_dirindex", argc, argv);
  driver.PrintHeader("Ablation: directory index capacity x policy x S_co");
  const SimConfig& base = driver.config();

  // Capacities in entries' worth of footprint: an entry claiming ~32
  // objects costs kEntryBaseBytes + 32 * kBytesPerObjectId bytes.
  const uint64_t entry_bytes =
      DirectoryStore::FootprintBytes(32);
  const std::vector<uint64_t> capacities = {
      4 * entry_bytes, 16 * entry_bytes, 64 * entry_bytes};
  const std::vector<std::string> policies = {"lru", "lfu", "gdsf"};
  const std::vector<int> overlay_sizes = {base.max_content_overlay_size / 2,
                                          base.max_content_overlay_size};

  // Queue the whole (S_co x policy x capacity) grid plus per-S_co
  // unbounded references, then run once — parallel under jobs=N, results
  // and sink output in submission order.
  for (int s_co : overlay_sizes) {
    SimConfig ref = base;
    ref.max_content_overlay_size = s_co;
    ref.directory_index_policy = "unbounded";
    ref.directory_index_capacity_bytes = 0;
    driver.Enqueue(ref, "flower",
                   "S_co=" + std::to_string(s_co) + "/unbounded");
    for (const std::string& policy : policies) {
      for (uint64_t capacity : capacities) {
        SimConfig c = base;
        c.max_content_overlay_size = s_co;
        c.directory_index_policy = policy;
        c.directory_index_capacity_bytes = capacity;
        driver.Enqueue(c, "flower",
                       "S_co=" + std::to_string(s_co) + "/" + policy + "/" +
                           std::to_string(capacity));
      }
    }
  }
  std::vector<RunResult> runs = driver.RunQueued();
  size_t next = 0;

  std::printf("  %-6s %-10s %-14s %-10s %-10s %-14s %-12s\n", "S_co",
              "policy", "capacity", "hit_ratio", "hit_cum", "dir_evictions",
              "server_hits");

  bool monotone = true;
  double reference_cum = 0;
  for (int s_co : overlay_sizes) {
    // Unbounded reference: the paper's complete index at this scale.
    const RunResult& reference = runs[next++];
    reference_cum = reference.cumulative_hit_ratio;
    std::printf("  %-6d %-10s %-14s %-10s %-10s %-14llu %-12llu\n", s_co,
                "unbounded", "inf",
                bench::Fmt(reference.final_hit_ratio).c_str(),
                bench::Fmt(reference.cumulative_hit_ratio).c_str(),
                static_cast<unsigned long long>(reference.dir_index_evictions),
                static_cast<unsigned long long>(reference.server_hits));

    for (const std::string& policy : policies) {
      double prev = -1.0;
      for (uint64_t capacity : capacities) {
        const RunResult& r = runs[next++];
        std::printf("  %-6d %-10s %-14llu %-10s %-10s %-14llu %-12llu\n",
                    s_co, policy.c_str(),
                    static_cast<unsigned long long>(capacity),
                    bench::Fmt(r.final_hit_ratio).c_str(),
                    bench::Fmt(r.cumulative_hit_ratio).c_str(),
                    static_cast<unsigned long long>(r.dir_index_evictions),
                    static_cast<unsigned long long>(r.server_hits));
        if (r.cumulative_hit_ratio + 1e-9 < prev) monotone = false;
        prev = r.cumulative_hit_ratio;
      }
      std::printf("\n");
    }
  }

  bench::PrintComparison("hit ratio vs index capacity (per policy)",
                         "monotone increasing",
                         monotone ? "monotone" : "NOT monotone");
  bench::PrintComparison(
      "largest capacity vs unbounded", "approaches paper behavior",
      bench::Fmt(reference_cum) + " reference");
  return 0;
}
