// Figure 5: hit ratio and background traffic over time for the chosen
// setting (T=30min, L=10, V=50).
//
// Paper shape: hit ratio keeps increasing with time; background traffic
// stabilizes at ~74 bps after ~5 hours.
#include <cstdio>

#include "bench_common.h"

int main(int argc, char** argv) {
  using namespace flower;
  bench::Driver driver("fig5", argc, argv);
  driver.PrintHeader("Figure 5: hit ratio & background traffic vs time");
  const SimConfig& c = driver.config();

  RunResult r = driver.Run("flower", "flower");

  std::printf("  %-10s %-12s %-14s\n", "hour", "hit_ratio", "background_bps");
  size_t windows = std::max(r.hit_ratio_by_window.size(),
                            r.background_bps_by_window.size());
  double per_hour = static_cast<double>(kHour) /
                    static_cast<double>(c.metrics_window);
  for (size_t i = 0; i < windows; ++i) {
    double hr = i < r.hit_ratio_by_window.size() ? r.hit_ratio_by_window[i]
                                                 : 0.0;
    double bps = i < r.background_bps_by_window.size()
                     ? r.background_bps_by_window[i]
                     : 0.0;
    std::printf("  %-10s %-12s %-14s\n",
                bench::Fmt(static_cast<double>(i + 1) / per_hour, 1).c_str(),
                bench::Fmt(hr).c_str(), bench::Fmt(bps, 1).c_str());
  }

  // Stabilization check: late-run traffic close to the steady value.
  size_t n = r.background_bps_by_window.size();
  if (n >= 4) {
    double late = (r.background_bps_by_window[n - 1] +
                   r.background_bps_by_window[n - 2]) /
                  2.0;
    bench::PrintComparison("steady background traffic", "~74 bps",
                           bench::Fmt(late, 1) + " bps");
  }
  if (!r.hit_ratio_by_window.empty()) {
    bench::PrintComparison(
        "hit ratio rises over the run", "increasing -> 0.86 at 24h",
        bench::Fmt(r.hit_ratio_by_window.front()) + " -> " +
            bench::Fmt(r.hit_ratio_by_window.back()));
  }
  return 0;
}
