// Quickstart: run a small Flower-CDN simulation and print the paper's four
// metrics. Any config knob can be overridden on the command line as
// key=value, e.g.:
//   ./quickstart duration=2h gossip_period=5min num_websites=20
#include <cstdio>

#include "common/config.h"
#include "workload/runner.h"

int main(int argc, char** argv) {
  flower::SimConfig config;
  // A small default scenario so the quickstart finishes in seconds.
  config.num_topology_nodes = 1200;
  config.num_websites = 20;
  config.num_active_websites = 4;
  config.max_content_overlay_size = 40;
  config.duration = 6 * flower::kHour;
  config.queries_per_second = 3.0;

  flower::Status status = config.ApplyArgs(argc, argv);
  if (!status.ok()) {
    std::fprintf(stderr, "bad arguments: %s\n", status.ToString().c_str());
    return 1;
  }

  std::printf("Flower-CDN quickstart\n  config: %s\n\n",
              config.ToString().c_str());

  flower::RunResult flower_run =
      flower::RunExperiment(config, flower::SystemKind::kFlower);
  std::printf("  %s\n", flower::FormatRunSummary(flower_run).c_str());

  flower::RunResult squirrel_run =
      flower::RunExperiment(config, flower::SystemKind::kSquirrelDirectory);
  std::printf("  %s\n\n", flower::FormatRunSummary(squirrel_run).c_str());

  std::printf("  lookup  < 150 ms : flower %.0f%%  squirrel %.0f%%\n",
              100 * flower_run.LookupFractionBelow(150),
              100 * squirrel_run.LookupFractionBelow(150));
  std::printf("  transfer< 100 ms : flower %.0f%%  squirrel %.0f%%\n",
              100 * flower_run.TransferFractionBelow(100),
              100 * squirrel_run.TransferFractionBelow(100));
  return 0;
}
