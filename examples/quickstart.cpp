// Quickstart: run a small Flower-CDN simulation through the Experiment
// builder (src/api/experiment.h) and print the paper's four metrics. Any
// config knob can be overridden on the command line as key=value, e.g.:
//   ./quickstart duration=2h gossip_period=5min num_websites=20
//   ./quickstart system=squirrel-home          # via the SystemRegistry
//   ./quickstart workload_trace=run.trace      # replay a recorded trace
#include <cstdio>

#include "api/experiment.h"

int main(int argc, char** argv) {
  flower::SimConfig config;
  // A small default scenario so the quickstart finishes in seconds.
  config.num_topology_nodes = 1200;
  config.num_websites = 20;
  config.num_active_websites = 4;
  config.max_content_overlay_size = 40;
  config.duration = 6 * flower::kHour;
  config.queries_per_second = 3.0;

  flower::Status status = config.ApplyArgs(argc, argv);
  if (!status.ok()) {
    std::fprintf(stderr, "bad arguments: %s\n", status.ToString().c_str());
    return 1;
  }

  std::printf("Flower-CDN quickstart\n  config: %s\n\n",
              config.ToString().c_str());

  // One builder per run; the text sink prints each summary line.
  flower::TextSummarySink text;

  // An explicit system= override runs just that system, resolved through
  // the SystemRegistry (unknown keys fail with the known-key list).
  bool explicit_system = false;
  for (int a = 1; a < argc; ++a) {
    if (std::string(argv[a]).rfind("system=", 0) == 0) {
      explicit_system = true;
    }
  }
  if (explicit_system) {
    flower::RunResult r = flower::Experiment(config).AddSink(&text).Run();
    std::printf("\n  gossip           : %s, steady-state background "
                "%.3f bps/peer\n",
                r.gossip_protocol.c_str(), r.SteadyStateBackgroundBps());
    std::printf("  lookup  < 150 ms : %.0f%%\n",
                100 * r.LookupFractionBelow(150));
    std::printf("  transfer< 100 ms : %.0f%%\n",
                100 * r.TransferFractionBelow(100));
    std::printf("  engine           : %llu events in %.0f ms (%.0f ev/s)\n",
                static_cast<unsigned long long>(r.events_processed),
                r.wall_ms, r.EventsPerSec());
    std::printf("  memory           : peak_rss_mb=%.1f\n",
                static_cast<double>(r.peak_rss_bytes) / (1024.0 * 1024.0));
    return 0;
  }
  flower::RunResult flower_run = flower::Experiment(config)
                                     .WithSystem("flower")
                                     .AddSink(&text)
                                     .Run();
  flower::RunResult squirrel_run = flower::Experiment(config)
                                       .WithSystem("squirrel")
                                       .AddSink(&text)
                                       .Run();
  std::printf("\n");

  // Membership protocol of the primary run plus its steady-state (tail
  // windows) background traffic — the number the gossip_protocol knob
  // actually moves once the startup flood has drained.
  std::printf("  gossip           : %s, steady-state background "
              "%.3f bps/peer\n",
              flower_run.gossip_protocol.c_str(),
              flower_run.SteadyStateBackgroundBps());
  std::printf("  lookup  < 150 ms : flower %.0f%%  squirrel %.0f%%\n",
              100 * flower_run.LookupFractionBelow(150),
              100 * squirrel_run.LookupFractionBelow(150));
  std::printf("  transfer< 100 ms : flower %.0f%%  squirrel %.0f%%\n",
              100 * flower_run.TransferFractionBelow(100),
              100 * squirrel_run.TransferFractionBelow(100));
  // Engine throughput (RunResult carries it; sinks deliberately omit
  // the wall-clock numbers to keep output reproducible). The primary
  // (flower) run gets the full events/wall_ms/ev-s line so engine
  // regressions are visible straight from this smoke run, same as the
  // explicit-system path above.
  std::printf("  engine           : flower %llu events in %.0f ms "
              "(%.0f ev/s)  squirrel %.0f ev/s\n",
              static_cast<unsigned long long>(flower_run.events_processed),
              flower_run.wall_ms, flower_run.EventsPerSec(),
              squirrel_run.EventsPerSec());
  // Peak RSS of the primary run (host-dependent like wall_ms, so it
  // lives on its own maskable line, never in sinks).
  std::printf("  memory           : peak_rss_mb=%.1f\n",
              static_cast<double>(flower_run.peak_rss_bytes) /
                  (1024.0 * 1024.0));
  return 0;
}
