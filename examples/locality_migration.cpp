// Locality migration scenario (paper Sec 5.4): a peer's network locality
// changes (e.g. a laptop moves between networks). The peer re-detects its
// locality via landmark pings, joins the content overlay of the new
// locality as a fresh client, and its old overlay forgets it through the
// usual failure-handling machinery.
//
// Unlike the other examples this one is not an experiment run at all —
// it steps single peers through a scripted scenario — so it uses the
// low-level wiring directly (see the appendix in core/flower_system.h)
// rather than the Experiment builder.
#include <cstdio>

#include "common/config.h"
#include "core/flower_system.h"
#include "net/locality.h"
#include "net/network.h"
#include "net/topology.h"
#include "sim/simulator.h"
#include "stats/metrics.h"

using namespace flower;

int main(int argc, char** argv) {
  SimConfig config;
  config.num_topology_nodes = 800;
  config.num_websites = 5;
  config.num_active_websites = 1;
  config.num_objects_per_website = 100;
  config.max_content_overlay_size = 30;
  config.gossip_period = 5 * kMinute;
  config.keepalive_period = 5 * kMinute;
  Status status = config.ApplyArgs(argc, argv);
  if (!status.ok()) {
    std::fprintf(stderr, "bad arguments: %s\n", status.ToString().c_str());
    return 1;
  }

  Simulator sim(config.seed);
  Topology topology(config, sim.rng());
  Network network(&sim, &topology);
  Metrics metrics(config);
  FlowerSystem system(config, &sim, &network, &topology, &metrics);
  system.Setup();

  // A handful of peers join overlay (site 0, locality 0) and locality 1.
  const auto& pool0 = system.deployment().client_pools[0][0];
  const auto& pool1 = system.deployment().client_pools[0][1];
  for (size_t i = 0; i < 6; ++i) {
    system.SubmitQuery(pool0[i], 0, system.catalog().site(0).objects[i]);
    system.SubmitQuery(pool1[i], 0,
                       system.catalog().site(0).objects[10 + i]);
  }
  sim.RunFor(30 * kMinute);

  NodeId mover = pool0[0];
  ContentPeer* peer = system.FindContentPeer(mover);
  DirectoryPeer* old_dir = system.FindDirectory(0, 0);
  DirectoryPeer* new_dir = system.FindDirectory(0, 1);
  std::printf("Peer at node %u is a member of overlay (site0, locality %u); "
              "its directory index knows it: %s\n",
              mover, peer->locality(),
              old_dir->IndexHas(peer->address()) ? "yes" : "no");

  // --- The move -------------------------------------------------------------
  // The paper handles locality change "as it manages failures": the peer
  // leaves (from the old overlay's perspective it failed/disconnected) and
  // rejoins at its new location as a new client.
  std::printf("\n... node %u moves from locality 0 to locality 1 ...\n\n",
              mover);
  peer->Leave();  // old overlay drops it (goodbye or, if crash, via T_dead)

  // In this simulation the topology itself is immutable, so we model the
  // moved machine as the same user appearing at a topology node of the new
  // locality (same cache semantics: the paper's peer keeps serving its
  // content to its *new* overlay after updating its directory).
  NodeId new_home = pool1[6];
  LandmarkLocalityDetector detector(&topology);
  Rng probe(1);
  LocalityId detected = detector.Detect(new_home, &probe);
  std::printf("Landmark pings from the new attachment point detect "
              "locality %u\n", detected);

  system.SubmitQuery(new_home, 0, system.catalog().site(0).objects[0]);
  sim.RunFor(30 * kMinute);

  ContentPeer* moved = system.FindContentPeer(new_home);
  std::printf("Rejoined: member of locality-%u overlay: %s; directory of "
              "locality 1 indexes it: %s\n",
              moved->locality(), moved->joined() ? "yes" : "no",
              new_dir->IndexHas(moved->address()) ? "yes" : "no");

  // The old overlay eventually forgets the departed peer.
  sim.RunFor(config.dead_age_limit * config.gossip_period + kMinute);
  std::printf("Old directory still lists the departed peer: %s\n",
              old_dir->IndexHas(peer->address()) ? "yes" : "no");

  std::printf("\n%s\n", metrics.Summary(sim.Now()).c_str());
  return 0;
}
