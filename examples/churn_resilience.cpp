// Churn resilience scenario (paper Sec 5 + Sec 8): volunteer peers come
// and go — including directory peers — while the workload keeps running.
// Demonstrates keepalive-based failure detection, directory replacement
// (join race and voluntary handoff) and the resulting service continuity.
#include <cstdio>

#include "common/config.h"
#include "core/churn.h"
#include "core/flower_system.h"
#include "net/network.h"
#include "net/topology.h"
#include "sim/simulator.h"
#include "stats/metrics.h"
#include "workload/workload.h"

using namespace flower;

int main(int argc, char** argv) {
  SimConfig config;
  config.num_topology_nodes = 1500;
  config.num_websites = 10;
  config.num_active_websites = 3;
  config.max_content_overlay_size = 40;
  config.duration = 12 * kHour;
  config.queries_per_second = 3.0;
  config.gossip_period = 10 * kMinute;
  config.keepalive_period = 5 * kMinute;
  config.metrics_window = kHour;
  config.churn_enabled = true;
  config.churn_mean_session = 90 * kMinute;
  config.churn_mean_downtime = 15 * kMinute;
  config.churn_fail_probability = 0.6;  // more crashes than goodbyes
  Status status = config.ApplyArgs(argc, argv);
  if (!status.ok()) {
    std::fprintf(stderr, "bad arguments: %s\n", status.ToString().c_str());
    return 1;
  }

  Simulator sim(config.seed);
  Topology topology(config, sim.rng());
  Network network(&sim, &topology);
  Metrics metrics(config);
  FlowerSystem system(config, &sim, &network, &topology, &metrics);
  system.Setup();
  ChurnManager churn(&system, config, Mix64(config.seed ^ 0xC0FFEE));
  churn.Start();

  WorkloadGenerator gen(config, system.deployment(), system.catalog(),
                        Mix64(config.seed ^ 0x5EED));

  // Drive the workload one event at a time; report hourly.
  std::printf("Churn resilience: mean session %lld min, %d%% crashes\n\n",
              static_cast<long long>(config.churn_mean_session / kMinute),
              static_cast<int>(100 * config.churn_fail_probability));
  std::printf("  %-6s %-10s %-10s %-10s %-12s %-12s\n", "hour", "hit",
              "deaths", "promos", "live_dirs", "live_peers");

  QueryEvent ev;
  bool more = gen.Next(&ev);
  for (SimTime hour = 1; hour <= config.duration / kHour; ++hour) {
    while (more && ev.time <= hour * kHour) {
      QueryEvent current = ev;
      sim.ScheduleAt(current.time, [&system, &churn, current]() {
        if (!churn.IsBlackedOut(current.node)) {
          system.SubmitQuery(current.node, current.website, current.object);
        }
      });
      more = gen.Next(&ev);
    }
    sim.RunUntil(hour * kHour);
    size_t windows = metrics.hit_series().NumWindows();
    double hit = windows == 0
                     ? 0
                     : metrics.hit_series().WindowRatio(windows - 1);
    std::printf("  %-6lld %-10.3f %-10llu %-10llu %-12zu %-12zu\n",
                static_cast<long long>(hour), hit,
                static_cast<unsigned long long>(churn.failures() +
                                                churn.leaves()),
                static_cast<unsigned long long>(system.promotions()),
                system.LiveDirectories().size(),
                system.LiveContentPeers().size());
  }

  std::printf("\n  %s\n", metrics.Summary(sim.Now()).c_str());
  std::printf(
      "  %llu peers died (%llu crashes / %llu leaves); %llu directory\n"
      "  replacements kept every overlay reachable. Unserved queries: %llu\n",
      static_cast<unsigned long long>(churn.failures() + churn.leaves()),
      static_cast<unsigned long long>(churn.failures()),
      static_cast<unsigned long long>(churn.leaves()),
      static_cast<unsigned long long>(system.promotions()),
      static_cast<unsigned long long>(metrics.queries_submitted() -
                                      metrics.queries_served()));
  return 0;
}
