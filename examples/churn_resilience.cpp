// Churn resilience scenario (paper Sec 5 + Sec 8): volunteer peers come
// and go — including directory peers — while the workload keeps running.
// Demonstrates keepalive-based failure detection, directory replacement
// (join race and voluntary handoff) and the resulting service continuity.
//
// Built on the Experiment builder with an hourly Every() observer that
// reads live system state through the typed FlowerAdapter.
#include <cstdio>

#include "api/experiment.h"
#include "api/systems.h"

using namespace flower;

int main(int argc, char** argv) {
  SimConfig config;
  config.num_topology_nodes = 1500;
  config.num_websites = 10;
  config.num_active_websites = 3;
  config.max_content_overlay_size = 40;
  config.duration = 12 * kHour;
  config.queries_per_second = 3.0;
  config.gossip_period = 10 * kMinute;
  config.keepalive_period = 5 * kMinute;
  config.metrics_window = kHour;
  config.churn_enabled = true;
  config.churn_mean_session = 90 * kMinute;
  config.churn_mean_downtime = 15 * kMinute;
  config.churn_fail_probability = 0.6;  // more crashes than goodbyes
  Status status = config.ApplyArgs(argc, argv);
  if (!status.ok()) {
    std::fprintf(stderr, "bad arguments: %s\n", status.ToString().c_str());
    return 1;
  }

  std::printf("Churn resilience: mean session %lld min, %d%% crashes\n\n",
              static_cast<long long>(config.churn_mean_session / kMinute),
              static_cast<int>(100 * config.churn_fail_probability));
  std::printf("  %-6s %-10s %-10s %-10s %-12s %-12s\n", "hour", "hit",
              "deaths", "promos", "live_dirs", "live_peers");

  RunResult result =
      Experiment(config)
          .WithSystem("flower")
          .Every(kHour,
                 [](const ObserverContext& ctx) {
                   auto* adapter = dynamic_cast<FlowerAdapter*>(ctx.system);
                   FlowerSystem& system = adapter->system();
                   ChurnManager* churn = adapter->churn();
                   size_t windows = ctx.metrics->hit_series().NumWindows();
                   double hit =
                       windows == 0
                           ? 0
                           : ctx.metrics->hit_series().WindowRatio(windows -
                                                                   1);
                   std::printf(
                       "  %-6lld %-10.3f %-10llu %-10llu %-12zu %-12zu\n",
                       static_cast<long long>(ctx.now / kHour), hit,
                       static_cast<unsigned long long>(churn->failures() +
                                                       churn->leaves()),
                       static_cast<unsigned long long>(system.promotions()),
                       system.LiveDirectories().size(),
                       system.LiveContentPeers().size());
                 })
          .Run();

  std::printf("\n  %s\n", FormatRunSummary(result).c_str());
  std::printf(
      "  %llu peers died (%llu crashes / %llu leaves); %llu directory\n"
      "  replacements kept every overlay reachable. Unserved queries: %llu\n",
      static_cast<unsigned long long>(result.churn_failures +
                                      result.churn_leaves),
      static_cast<unsigned long long>(result.churn_failures),
      static_cast<unsigned long long>(result.churn_leaves),
      static_cast<unsigned long long>(result.directory_promotions),
      static_cast<unsigned long long>(result.queries_submitted -
                                      result.queries_served));
  return 0;
}
