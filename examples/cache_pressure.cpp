// Cache pressure: run the same small Flower-CDN scenario with unbounded
// peer storage (the paper's Sec 4 assumption) and with a bounded LRU
// cache, and show what storage pressure does to the hit ratio and to
// summary staleness (evictions -> stale redirects -> counted fallbacks).
// Any config knob can be overridden as key=value, e.g.:
//   ./cache_pressure cache_capacity_bytes=65536 cache_policy=gdsf
#include <cstdio>

#include "api/experiment.h"

int main(int argc, char** argv) {
  flower::SimConfig config;
  // Same small default scenario as the quickstart.
  config.num_topology_nodes = 1200;
  config.num_websites = 20;
  config.num_active_websites = 4;
  config.max_content_overlay_size = 40;
  config.duration = 6 * flower::kHour;
  config.queries_per_second = 3.0;
  // Default pressure point: room for ~10 of the 10 KB objects per peer.
  config.cache_policy = "lru";
  config.cache_capacity_bytes = 100 * 1024;

  flower::Status status = config.ApplyArgs(argc, argv);
  if (!status.ok()) {
    std::fprintf(stderr, "bad arguments: %s\n", status.ToString().c_str());
    return 1;
  }

  std::printf("Flower-CDN under cache pressure\n  config: %s\n\n",
              config.ToString().c_str());

  flower::SimConfig unbounded = config;
  unbounded.cache_policy = "unbounded";
  unbounded.cache_capacity_bytes = 0;
  flower::RunResult baseline = flower::Experiment(unbounded)
                                   .WithSystem("flower")
                                   .WithLabel("unbounded")
                                   .Run();
  std::printf("  unbounded : %s\n", flower::FormatRunSummary(baseline).c_str());

  flower::RunResult bounded = flower::Experiment(config)
                                  .WithSystem("flower")
                                  .WithLabel(config.cache_policy)
                                  .Run();
  std::printf("  %-9s : %s\n", config.cache_policy.c_str(),
              flower::FormatRunSummary(bounded).c_str());

  std::printf(
      "\n  storage pressure cost: hit ratio %.3f -> %.3f, "
      "%llu evictions, %llu stale redirects (all fell back, none lost)\n",
      baseline.final_hit_ratio, bounded.final_hit_ratio,
      static_cast<unsigned long long>(bounded.cache_evictions),
      static_cast<unsigned long long>(bounded.stale_redirects));
  return 0;
}
