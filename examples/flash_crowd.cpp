// Flash crowd scenario — the workload the paper's introduction motivates:
// an under-provisioned (e.g. non-profit) website is suddenly referenced by
// a popular site and its query rate explodes. Flower-CDN absorbs the burst
// in the content overlays; the origin server sees only first-fetches.
//
// This example shows the two extension points of the Experiment builder:
// a custom WorkloadSource (the three-phase flash-crowd arrival process)
// and At() observers (per-phase reporting against the typed FlowerAdapter
// from src/api/systems.h).
#include <algorithm>
#include <cstdio>
#include <memory>
#include <vector>

#include "api/experiment.h"
#include "api/systems.h"
#include "common/hash.h"

using namespace flower;

namespace {

struct Phase {
  const char* name;
  double qps;
  SimTime length;
};

/// Piecewise-constant Poisson arrivals: each phase runs the paper's
/// synthetic generator at its own rate over its own time slice.
class PhasedWorkload : public WorkloadSource {
 public:
  PhasedWorkload(const WorkloadEnv& env, std::vector<Phase> phases)
      : env_(env), phases_(std::move(phases)) {}

  const std::string& name() const override { return name_; }

  bool Next(QueryEvent* out) override {
    while (phase_ < phases_.size()) {
      if (generator_ == nullptr) {
        phase_config_ = *env_.config;
        phase_config_.queries_per_second = phases_[phase_].qps;
        phase_config_.duration = start_ + phases_[phase_].length;
        generator_ = std::make_unique<WorkloadGenerator>(
            phase_config_, *env_.deployment, *env_.catalog,
            Mix64(env_.config->seed) ^ static_cast<uint64_t>(start_));
      }
      QueryEvent ev;
      while (generator_->Next(&ev)) {
        if (ev.time <= start_) continue;  // skip the pre-phase warm-up
        *out = ev;
        return true;
      }
      start_ += phases_[phase_].length;
      ++phase_;
      generator_.reset();
    }
    return false;
  }

 private:
  WorkloadEnv env_;
  std::vector<Phase> phases_;
  SimConfig phase_config_;
  std::unique_ptr<WorkloadGenerator> generator_;
  size_t phase_ = 0;
  SimTime start_ = 0;
  std::string name_ = "flash-crowd";
};

}  // namespace

int main(int argc, char** argv) {
  SimConfig config;
  config.num_topology_nodes = 2000;
  config.num_websites = 10;
  config.num_active_websites = 1;  // the one site being hugged to death
  config.num_objects_per_website = 200;
  config.max_content_overlay_size = 80;
  config.duration = 8 * kHour;
  config.gossip_period = 10 * kMinute;
  config.metrics_window = 30 * kMinute;
  Status status = config.ApplyArgs(argc, argv);
  if (!status.ok()) {
    std::fprintf(stderr, "bad arguments: %s\n", status.ToString().c_str());
    return 1;
  }

  // Phase 1: calm browsing at 0.5 q/s for 2 hours.
  // Phase 2: the flash crowd - 20 q/s for 2 hours.
  // Phase 3: decay back to 2 q/s.
  const std::vector<Phase> phases = {{"calm", 0.5, 2 * kHour},
                                     {"flash crowd", 20.0, 2 * kHour},
                                     {"decay", 2.0, 4 * kHour}};

  std::printf("Flash crowd through the Experiment builder\n\n");

  uint64_t prev_queries = 0;
  uint64_t prev_server_hits = 0;
  size_t reported = 0;
  auto report_phase = [&](const ObserverContext& ctx) {
    auto* adapter = dynamic_cast<FlowerAdapter*>(ctx.system);
    OriginServer* server = adapter->system().FindServer(0);
    const Phase& phase = phases[reported++];
    uint64_t queries = ctx.metrics->queries_submitted() - prev_queries;
    uint64_t server_hits = server->queries_served() - prev_server_hits;
    prev_queries = ctx.metrics->queries_submitted();
    prev_server_hits = server->queries_served();
    double relief =
        queries == 0 ? 0
                     : 100.0 * (1.0 - static_cast<double>(server_hits) /
                                          static_cast<double>(queries));
    std::printf(
        "  phase %-12s qps=%-5.1f queries=%-7llu server_hits=%-6llu "
        "server relief=%5.1f%%\n",
        phase.name, phase.qps, static_cast<unsigned long long>(queries),
        static_cast<unsigned long long>(server_hits), relief);
  };

  Experiment experiment(config);
  experiment.WithSystem("flower").WithWorkload(
      [&phases](const WorkloadEnv& env)
          -> Result<std::unique_ptr<WorkloadSource>> {
        return std::unique_ptr<WorkloadSource>(
            new PhasedWorkload(env, phases));
      });
  SimTime boundary = 0;
  for (const Phase& phase : phases) {
    boundary += phase.length;
    // The run is clamped to `duration` (RunUntil is inclusive, so a
    // boundary right at the end still reports).
    experiment.At(std::min(boundary, config.duration), report_phase);
  }
  RunResult result = experiment.Run();

  std::printf("\n  %s\n", FormatRunSummary(result).c_str());
  std::printf(
      "  The flash crowd was served almost entirely by the P2P overlays:\n"
      "  the origin server handled %llu of %llu total queries.\n",
      static_cast<unsigned long long>(result.server_hits),
      static_cast<unsigned long long>(result.queries_submitted));
  return 0;
}
