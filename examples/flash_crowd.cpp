// Flash crowd scenario — the workload the paper's introduction motivates:
// an under-provisioned (e.g. non-profit) website is suddenly referenced by
// a popular site and its query rate explodes. Flower-CDN absorbs the burst
// in the content overlays; the origin server sees only first-fetches.
//
// This example drives FlowerSystem directly through its public API rather
// than the canned runner, showing how to embed the library.
#include <cstdio>

#include "common/config.h"
#include "core/flower_system.h"
#include "net/network.h"
#include "net/topology.h"
#include "sim/simulator.h"
#include "stats/metrics.h"
#include "workload/workload.h"

using namespace flower;

int main(int argc, char** argv) {
  SimConfig config;
  config.num_topology_nodes = 2000;
  config.num_websites = 10;
  config.num_active_websites = 1;  // the one site being hugged to death
  config.num_objects_per_website = 200;
  config.max_content_overlay_size = 80;
  config.duration = 8 * kHour;
  config.gossip_period = 10 * kMinute;
  config.metrics_window = 30 * kMinute;
  Status status = config.ApplyArgs(argc, argv);
  if (!status.ok()) {
    std::fprintf(stderr, "bad arguments: %s\n", status.ToString().c_str());
    return 1;
  }

  Simulator sim(config.seed);
  Topology topology(config, sim.rng());
  Network network(&sim, &topology);
  Metrics metrics(config);
  FlowerSystem system(config, &sim, &network, &topology, &metrics);
  system.Setup();

  std::printf("Flash crowd on %s\n",
              system.catalog().site(0).url.c_str());

  // Phase 1: calm browsing at 0.5 q/s for 2 hours.
  // Phase 2: the flash crowd - 20 q/s for 2 hours.
  // Phase 3: decay back to 2 q/s.
  struct Phase {
    const char* name;
    double qps;
    SimTime length;
  };
  const Phase phases[] = {{"calm", 0.5, 2 * kHour},
                          {"flash crowd", 20.0, 2 * kHour},
                          {"decay", 2.0, 4 * kHour}};

  OriginServer* server = system.FindServer(0);
  uint64_t prev_server_hits = 0;
  uint64_t prev_queries = 0;

  for (const Phase& phase : phases) {
    SimConfig phase_config = config;
    phase_config.queries_per_second = phase.qps;
    phase_config.duration = sim.Now() + phase.length;
    WorkloadGenerator gen(phase_config, system.deployment(),
                          system.catalog(), Mix64(config.seed) ^ sim.Now());
    // Skip the generator ahead to "now".
    QueryEvent ev;
    while (gen.Next(&ev)) {
      if (ev.time <= sim.Now()) continue;
      sim.ScheduleAt(ev.time, [&system, ev]() {
        system.SubmitQuery(ev.node, ev.website, ev.object);
      });
    }
    sim.RunUntil(phase_config.duration);

    uint64_t queries = metrics.queries_submitted() - prev_queries;
    uint64_t server_hits = server->queries_served() - prev_server_hits;
    prev_queries = metrics.queries_submitted();
    prev_server_hits = server->queries_served();
    double relief =
        queries == 0 ? 0
                     : 100.0 * (1.0 - static_cast<double>(server_hits) /
                                          static_cast<double>(queries));
    std::printf(
        "  phase %-12s qps=%-5.1f queries=%-7llu server_hits=%-6llu "
        "server relief=%5.1f%%\n",
        phase.name, phase.qps, static_cast<unsigned long long>(queries),
        static_cast<unsigned long long>(server_hits), relief);
  }

  std::printf("\n  %s\n", metrics.Summary(sim.Now()).c_str());
  std::printf(
      "  The flash crowd was served almost entirely by the P2P overlays:\n"
      "  the origin server handled %llu of %llu total queries.\n",
      static_cast<unsigned long long>(server->queries_served()),
      static_cast<unsigned long long>(metrics.queries_submitted()));
  return 0;
}
